//! Chaos contract suite: the key-value contract run under seeded fault
//! injection.
//!
//! Every scenario here is deterministic — the servers draw fault decisions
//! from a fixed-seed RNG (`fault_seed` in each server config), so a failure
//! reproduces bit-for-bit. The suite asserts the resilience layer's three
//! load-bearing promises:
//!
//! 1. **Bounded latency**: under a 5% reset + 5% stall model, every
//!    operation completes or fails within the request deadline — no
//!    slow-loris hang, no unbounded retry storm.
//! 2. **At-most-once effects**: non-idempotent operations (`INCR`,
//!    `INSERT`) are never applied twice, even when the server applies the
//!    effect and then loses the reply.
//! 3. **Shed and recover**: a total outage provably opens the circuit
//!    breaker (fast-fail without touching the network), and the breaker
//!    re-closes once the fault clears; the enhanced client meanwhile keeps
//!    serving cached reads inside its stale window.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dscl::{DsclConfig, EnhancedClient};
use dscl_cache::InProcessLru;
use kvapi::{KeyValue, StoreError};
use miniredis::{RedisClient, RedisKv, Server};
use minisql::{MiniSqlClient, SqlServer};
use netsim::FaultModel;
use resilience::{BreakerState, ResiliencePolicy};

/// Per-op wall-clock ceiling: the test profile's 2 s request budget plus
/// scheduling slack. Nothing — not a stall, not a dribble — may push one
/// logical operation past this.
const OP_CEILING: Duration = Duration::from_secs(3);

/// Under seeded 5% resets + 5% stalls, every op finishes (ok or err)
/// inside the deadline, the workload makes forward progress, and once the
/// fault model is cleared the full kv contract passes against the same
/// server — convergence after chaos.
#[test]
fn seeded_chaos_keeps_ops_inside_deadline_and_converges() {
    let server = Server::start().unwrap();
    let kv = RedisKv::connect_with_policy(server.addr(), ResiliencePolicy::test_profile());

    server
        .fault_injector()
        .set_model(FaultModel::chaos(0.05, 50.0));

    let (mut ok, mut failed) = (0u32, 0u32);
    for i in 0..150 {
        let key = format!("chaos-{}", i % 10);
        let start = Instant::now();
        let outcome: Result<(), StoreError> = match i % 4 {
            0 => kv.put(&key, format!("v{i}").as_bytes()),
            1 => kv.get(&key).map(|_| ()),
            2 => kv.contains(&key).map(|_| ()),
            _ => kv.delete(&key).map(|_| ()),
        };
        let elapsed = start.elapsed();
        assert!(
            elapsed < OP_CEILING,
            "op {i} took {elapsed:?}, past the deadline ceiling"
        );
        match outcome {
            Ok(()) => ok += 1,
            Err(_) => failed += 1,
        }
    }
    assert!(
        ok > failed,
        "no forward progress under 5% chaos: {ok} ok vs {failed} failed"
    );

    // Fault clears; wait out the breaker cooldown, then the server must
    // satisfy the full contract again.
    server.fault_injector().set_model(FaultModel::none());
    std::thread::sleep(Duration::from_millis(150));
    kvapi::contract::run_all(&kv);
    assert_eq!(
        kv.client().resilience().breaker().state(),
        BreakerState::Closed,
        "breaker still open after the fault cleared and the contract passed"
    );
}

/// `INCR` rides the no-retry path (`exec_once`): when the server applies
/// the increment and then resets the connection, the client sees an error
/// but must NOT replay. The counter therefore never exceeds the number of
/// issued commands, and never undercounts acknowledged successes.
#[test]
fn non_idempotent_increments_apply_at_most_once_under_resets() {
    let server = Server::start().unwrap();
    let client = RedisClient::connect_with_policy(server.addr(), ResiliencePolicy::test_profile());

    server.fault_injector().set_model(FaultModel {
        reset_prob: 0.3,
        ..FaultModel::none()
    });

    let attempts = 60i64;
    let mut acknowledged = 0i64;
    for _ in 0..attempts {
        if client.incr("ctr").is_ok() {
            acknowledged += 1;
        }
    }

    server.fault_injector().set_model(FaultModel::none());
    std::thread::sleep(Duration::from_millis(150));
    let raw = client.get("ctr").unwrap().expect("counter must exist");
    let applied: i64 = std::str::from_utf8(&raw).unwrap().parse().unwrap();

    assert!(
        acknowledged < attempts,
        "fault model never fired; the test exercised nothing"
    );
    assert!(
        applied <= attempts,
        "counter at {applied} after {attempts} commands: a non-idempotent \
         op was replayed"
    );
    assert!(
        applied >= acknowledged,
        "counter at {applied} but {acknowledged} increments were \
         acknowledged: an acknowledged effect was lost"
    );
}

/// SQL `INSERT`s under reply-loss: effects the server applied before the
/// reset stay applied exactly once, and the client never replays a
/// statement whose frame already reached the wire.
#[test]
fn sql_writes_survive_reply_loss_without_duplication() {
    let server = SqlServer::start_in_memory().unwrap();
    let client = MiniSqlClient::connect_with(
        server.addr(),
        ResiliencePolicy::test_profile(),
        kvapi::Transport::Blocking,
    );
    client
        .execute("CREATE TABLE chaos (id INTEGER PRIMARY KEY, body TEXT)")
        .unwrap();

    server.fault_injector().set_model(FaultModel {
        reset_prob: 0.3,
        ..FaultModel::none()
    });

    let attempts = 40usize;
    let mut acknowledged = 0usize;
    for i in 0..attempts {
        let stmt = format!("INSERT INTO chaos (id, body) VALUES ({i}, 'row-{i}')");
        if client.execute(&stmt).is_ok() {
            acknowledged += 1;
        }
    }

    server.fault_injector().set_model(FaultModel::none());
    std::thread::sleep(Duration::from_millis(150));
    let rs = client.execute("SELECT id FROM chaos").unwrap();
    let applied = rs.rows.len();

    assert!(acknowledged < attempts, "fault model never fired");
    assert!(
        applied <= attempts,
        "{applied} rows from {attempts} single-row inserts: a write was \
         duplicated"
    );
    assert!(
        applied >= acknowledged,
        "{applied} rows but {acknowledged} inserts acknowledged"
    );
}

/// A total outage must trip the per-endpoint breaker: after the failure
/// threshold, calls are shed instantly (no network I/O, no deadline burn),
/// and once the outage clears and the cooldown elapses the breaker
/// half-opens, probes, and re-closes.
#[test]
fn breaker_opens_sheds_fast_and_recovers() {
    let mut server = cloudstore::CloudServer::start_local().unwrap();
    let client = cloudstore::CloudClient::connect_with(
        server.addr(),
        ResiliencePolicy::test_profile(),
        kvapi::Transport::Blocking,
    );
    client.put("k", b"v").unwrap();

    server.fault_injector().set_model(FaultModel::outage());
    server.drop_connections();

    // One failing request burns the whole retry budget (3 attempts), which
    // meets the test profile's failure threshold of 3.
    assert!(client.get("k").is_err(), "outage must surface an error");
    assert_eq!(client.resilience().breaker().state(), BreakerState::Open);

    // While open, calls are shed without touching the network: fast, and
    // counted as breaker rejections.
    let rejections_before = client.resilience().breaker_rejections();
    let start = Instant::now();
    let shed = client.get("k");
    let shed_elapsed = start.elapsed();
    assert!(
        matches!(shed, Err(StoreError::Unavailable(_))),
        "open breaker must shed with Unavailable, got {shed:?}"
    );
    assert!(
        shed_elapsed < Duration::from_millis(500),
        "shed call took {shed_elapsed:?}; an open breaker must fail fast"
    );
    assert!(client.resilience().breaker_rejections() > rejections_before);

    // Outage clears; after the cooldown the half-open probe succeeds and
    // the breaker re-closes.
    server.fault_injector().set_model(FaultModel::none());
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(client.get("k").unwrap().unwrap(), &b"v"[..]);
    assert_eq!(client.resilience().breaker().state(), BreakerState::Closed);

    server.stop();
}

/// At 100% faults the enhanced client keeps answering reads from expired
/// cache entries inside the configured stale window, and reports each
/// stale serve through the obs registry. When the store heals, normal
/// revalidation resumes.
#[test]
fn enhanced_client_serves_stale_reads_through_total_outage() {
    let server = Server::start().unwrap();
    let kv = RedisKv::connect_with_policy(server.addr(), ResiliencePolicy::test_profile());
    let reg = Arc::new(obs::Registry::new());
    let client = EnhancedClient::new(kv)
        .with_cache(Arc::new(InProcessLru::new(16 << 20)))
        .with_config(DsclConfig {
            default_ttl: Some(Duration::from_millis(40)),
            stale_while_error: Some(Duration::from_secs(10)),
            ..Default::default()
        })
        .with_registry(reg.clone());

    client.put("k", b"cached").unwrap();

    server.fault_injector().set_model(FaultModel::outage());
    server.drop_connections();
    std::thread::sleep(Duration::from_millis(60)); // entry is now expired

    // Expired entry + unreachable store + open stale window: serve stale.
    assert_eq!(client.get("k").unwrap().unwrap(), &b"cached"[..]);
    assert!(client.stats().stale_serves >= 1, "{:?}", client.stats());
    let text = reg.render_prometheus();
    assert!(
        text.contains("dscl_stale_serves_total"),
        "stale serves missing from metrics:\n{text}"
    );

    // A key that was never cached has nothing to fall back on.
    assert!(client.get("never-cached").is_err());

    // Store heals: the next read revalidates against the server again.
    server.fault_injector().set_model(FaultModel::none());
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(client.get("k").unwrap().unwrap(), &b"cached"[..]);
}
