//! Chaos tracing suite: under seeded fault injection, the distributed
//! trace of one logical operation must tell the whole story — every retry
//! attempt with its backoff, the breaker transition that shed load, and
//! exactly the server-side work that actually happened (at-most-once made
//! auditable).
//!
//! All scenarios are deterministic: servers draw fault decisions from
//! fixed-seed RNGs, trace ids come from the seeded id generator, and the
//! tail sampler retains 100% of errored traces, so every `by_trace_id`
//! lookup below is guaranteed to succeed.

use std::time::Duration;

use kvapi::KeyValue;
use miniredis::{RedisClient, RedisKv, Server};
use netsim::FaultModel;
use resilience::ResiliencePolicy;

/// A GET whose reply is lost to a mid-stream reset black-holes until the
/// request deadline expires (the server keeps the socket open; no FIN ever
/// arrives). The captured trace must show the deadline event, and the
/// flight recorder must hold exactly one errored server-side span joined
/// to our trace: the server *did* the work — only the answer vanished.
#[test]
fn reset_black_holes_are_deadline_bounded_and_leave_an_errored_server_span() {
    let server = Server::start().unwrap();
    let kv = RedisKv::connect_with_policy(server.addr(), ResiliencePolicy::test_profile());
    server.fault_injector().set_model(FaultModel {
        reset_prob: 1.0,
        ..FaultModel::none()
    });

    let root = obs::TraceContext::new_root();
    let scope = obs::ctx::activate(root);
    assert!(kv.get("k").is_err(), "a black-holed reply must surface");
    let data = scope.finish();

    assert!(
        data.events
            .iter()
            .any(|(_, name, detail)| name == "deadline" && detail == "expired"),
        "black-holed reply must be cut by the deadline: {:?}",
        data.events
    );
    // The reply never arrived, so no server span reached the client...
    assert!(data.server_spans.is_empty());
    // ...but the server recorded its side of the story, joined to OUR
    // trace: exactly one errored GET execution, auditable after the fact.
    let recs = obs::FlightRecorder::global().by_trace_id(root.trace_id);
    let server_recs: Vec<_> = recs.iter().filter(|r| r.origin == "miniredis").collect();
    assert_eq!(server_recs.len(), 1, "one attempt, one record: {recs:?}");
    let r = server_recs[0];
    assert_eq!(r.op, "GET");
    assert!(r.error.is_some(), "reset must mark the server record");
    assert!(r.stages.iter().any(|(s, _)| s == &"execute"));
    assert_eq!(r.ctx.unwrap().trace_id, root.trace_id);
}

/// A GET against a fully refused endpoint burns the whole retry budget
/// fast. The captured trace must carry one event per retry attempt (with
/// the chosen backoff) and the breaker's closed→open transition — and no
/// server-side record, because no attempt ever reached the command loop.
#[test]
fn refused_connections_trace_every_retry_and_the_breaker_opening() {
    let server = Server::start().unwrap();
    let kv = RedisKv::connect_with_policy(server.addr(), ResiliencePolicy::test_profile());
    server.fault_injector().set_model(FaultModel::outage());

    let root = obs::TraceContext::new_root();
    let scope = obs::ctx::activate(root);
    assert!(kv.get("k").is_err(), "total refusals must surface an error");
    let data = scope.finish();

    // Every attempt after the first announced itself with its backoff.
    let retries: Vec<&(std::time::Instant, String, String)> = data
        .events
        .iter()
        .filter(|(_, name, _)| name == "retry")
        .collect();
    assert_eq!(
        retries.len(),
        2,
        "3-attempt budget must log exactly 2 retry events: {:?}",
        data.events
    );
    for (i, (_, _, detail)) in retries.iter().enumerate() {
        assert!(
            detail.contains(&format!("attempt={}", i + 2)) && detail.contains("backoff_ms="),
            "retry event {i} malformed: {detail:?}"
        );
    }
    // The burned budget met the test profile's failure threshold.
    assert!(
        data.events
            .iter()
            .any(|(_, name, detail)| name == "breaker" && detail == "closed→open"),
        "breaker transition missing from the trace: {:?}",
        data.events
    );
    // Refusal severs the connection before the command is read: the trace
    // proves no server-side work happened.
    let recs = obs::FlightRecorder::global().by_trace_id(root.trace_id);
    assert!(
        recs.iter().all(|r| r.origin != "miniredis"),
        "refused attempts must leave no server record: {recs:?}"
    );
}

/// Guarded (non-idempotent) INCRs under seeded 30% resets: every issued
/// command's trace contains AT MOST one server-side execute span — the
/// trace is the proof that the no-retry path never replays. Failed
/// commands still leave exactly one errored server record (the effect that
/// was applied before the reply was lost).
#[test]
fn guarded_incr_traces_prove_at_most_once_under_resets() {
    let server = Server::start().unwrap();
    let client = RedisClient::connect_with_policy(server.addr(), ResiliencePolicy::test_profile());
    server.fault_injector().set_model(FaultModel {
        reset_prob: 0.3,
        ..FaultModel::none()
    });

    let mut failed_ids: Vec<u128> = Vec::new();
    let mut ok_count = 0u32;
    for _ in 0..40 {
        let root = obs::TraceContext::new_root();
        let scope = obs::ctx::activate(root);
        let outcome = client.incr("ctr");
        let data = scope.finish();
        match outcome {
            Ok(_) => {
                ok_count += 1;
                assert_eq!(
                    data.server_spans.len(),
                    1,
                    "acknowledged INCR carries exactly one server span"
                );
                assert_eq!(data.server_spans[0].server, "miniredis");
            }
            Err(_) => {
                assert!(
                    data.server_spans.is_empty(),
                    "reply was lost; no span can have arrived"
                );
                failed_ids.push(root.trace_id);
            }
        }
        // Idempotency guard: never more than one server-side execution,
        // acknowledged or not.
        let recs = obs::FlightRecorder::global().by_trace_id(root.trace_id);
        let executes = recs
            .iter()
            .filter(|r| r.origin == "miniredis" && r.op == "INCR")
            .count();
        assert!(
            executes <= 1,
            "INCR trace {:032x} shows {executes} server executions — replayed!",
            root.trace_id
        );
    }

    assert!(ok_count > 0, "no INCR succeeded; fault model too harsh");
    assert!(!failed_ids.is_empty(), "fault model never fired");
    // Every lost-reply INCR left exactly one errored server record: the
    // applied-then-lost effect is visible in the flight recorder even
    // though the client never saw a reply.
    for id in &failed_ids {
        let recs = obs::FlightRecorder::global().by_trace_id(*id);
        let execs: Vec<_> = recs
            .iter()
            .filter(|r| r.origin == "miniredis" && r.op == "INCR")
            .collect();
        assert_eq!(execs.len(), 1, "trace {id:032x}: {execs:?}");
        assert!(
            execs[0].error.is_some(),
            "lost-reply record must be marked errored (and thus retained)"
        );
    }

    // Ground truth agrees with the traces.
    server.fault_injector().set_model(FaultModel::none());
    std::thread::sleep(Duration::from_millis(150));
    let raw = client.get("ctr").unwrap().expect("counter exists");
    let applied: i64 = std::str::from_utf8(&raw).unwrap().parse().unwrap();
    assert!(applied >= i64::from(ok_count));
    assert!(applied <= 40);
}
