//! End-to-end tests of the enhanced client against the simulated cloud
//! store: caching latency wins, real HTTP 304 revalidation, confidentiality
//! through the full stack, and remote-process caching.

use cloudstore::{CloudClient, CloudServer, CloudServerConfig};
use dscl::{CacheContent, DsclConfig, EnhancedClient};
use dscl_cache::{Cache, InProcessLru};
use dscl_compress::GzipCodec;
use dscl_crypto::AesCodec;
use kvapi::KeyValue;
use miniredis::{RemoteCache, Server as RedisServer};
use netsim::LatencyModel;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn slow_cloud(rtt_ms: f64) -> CloudServer {
    CloudServer::start(CloudServerConfig {
        latency: LatencyModel {
            base_rtt_ms: rtt_ms,
            jitter_sigma: 0.0,
            bandwidth_bps: f64::INFINITY,
            contention_prob: 0.0,
            contention_mult: 1.0,
            service_ms: 0.0,
        },
        ..Default::default()
    })
    .unwrap()
}

#[test]
fn cache_eliminates_wan_round_trips() {
    let server = slow_cloud(25.0);
    let client = EnhancedClient::new(CloudClient::connect(server.addr()))
        .with_cache(Arc::new(InProcessLru::new(16 << 20)));
    client.put("obj", &[1u8; 10_000]).unwrap();

    // Miss-free reads after write-through population.
    let t0 = Instant::now();
    for _ in 0..20 {
        assert_eq!(client.get("obj").unwrap().unwrap().len(), 10_000);
    }
    let hit_time = t0.elapsed();
    assert!(
        hit_time < Duration::from_millis(20),
        "20 cached reads took {hit_time:?}; they must not touch the 25 ms WAN"
    );
    assert_eq!(client.stats().cache_hits, 20);

    // One uncached read for contrast.
    let t0 = Instant::now();
    let _ = client.store().get("obj").unwrap();
    assert!(
        t0.elapsed() >= Duration::from_millis(20),
        "direct read must pay the WAN"
    );
}

#[test]
fn revalidation_over_real_http_304() {
    let server = slow_cloud(10.0);
    let client = EnhancedClient::new(CloudClient::connect(server.addr()))
        .with_cache(Arc::new(InProcessLru::new(16 << 20)))
        .with_ttl(Duration::from_millis(50));
    let body = vec![7u8; 500_000];
    client.put("big", &body).unwrap();
    assert_eq!(client.get("big").unwrap().unwrap().len(), body.len());

    std::thread::sleep(Duration::from_millis(60));
    // Expired: this read revalidates. The 304 carries no body, so even on
    // the 10 ms path it is far cheaper than refetching 500 KB would be
    // under a finite-bandwidth model; here we check semantics + stats.
    let t0 = Instant::now();
    assert_eq!(client.get("big").unwrap().unwrap().len(), body.len());
    let reval_time = t0.elapsed();
    let s = client.stats();
    assert_eq!(s.revalidations, 1);
    assert_eq!(s.revalidated_current, 1, "unchanged object must 304");
    assert!(
        reval_time >= Duration::from_millis(9),
        "revalidation still pays one RTT"
    );

    // Out-of-band change: next expiry must fetch the new version.
    client.store().put("big", b"changed").unwrap();
    std::thread::sleep(Duration::from_millis(60));
    assert_eq!(client.get("big").unwrap().unwrap(), &b"changed"[..]);
    assert_eq!(client.stats().revalidations, 2);
    assert_eq!(client.stats().revalidated_current, 1);
}

#[test]
fn full_stack_confidentiality_and_compression() {
    let server = CloudServer::start_local().unwrap();
    let cache: Arc<dyn Cache> = Arc::new(InProcessLru::new(16 << 20));
    let client = EnhancedClient::new(CloudClient::connect(server.addr()))
        .with_cache(cache.clone())
        .with_codec(Box::new(GzipCodec::default()))
        .with_codec(Box::new(AesCodec::aes128(b"sixteen byte key")))
        .with_config(DsclConfig {
            cache_content: CacheContent::Encoded,
            ..Default::default()
        });

    let secret = "SSN 123-45-6789, diagnosis: classified. ".repeat(100);
    client.put("phi", secret.as_bytes()).unwrap();

    // Server side: compressed-then-encrypted, no plaintext, smaller than
    // the original (compression before encryption preserved the savings).
    let server_bytes = client.store().get("phi").unwrap().unwrap();
    assert!(!server_bytes.windows(3).any(|w| w == b"SSN"));
    assert!(
        server_bytes.len() < secret.len() / 2,
        "compress-then-encrypt must stay small"
    );
    // Cache side: same encoded bytes (CacheContent::Encoded).
    let cached = cache.get("phi").unwrap();
    assert!(!cached.windows(3).any(|w| w == b"SSN"));
    // Client still round-trips plaintext.
    assert_eq!(client.get("phi").unwrap().unwrap(), secret.as_bytes());
}

#[test]
fn remote_process_cache_against_cloud_store() {
    // The paper's Fig. 12 configuration: redis as a remote cache between
    // the client and a distant cloud store.
    let redis = RedisServer::start().unwrap();
    let server = slow_cloud(25.0);
    let client = EnhancedClient::new(CloudClient::connect(server.addr()))
        .with_cache(Arc::new(RemoteCache::connect(redis.addr())));
    client.put("obj", &[3u8; 50_000]).unwrap();
    let t0 = Instant::now();
    for _ in 0..5 {
        assert_eq!(client.get("obj").unwrap().unwrap().len(), 50_000);
    }
    let elapsed = t0.elapsed();
    // Remote cache pays loopback IPC + serialization but not the WAN:
    // far below 5 × 25 ms, far above an in-process hit.
    assert!(
        elapsed < Duration::from_millis(60),
        "remote-cache hits must avoid the WAN, took {elapsed:?}"
    );
    assert_eq!(client.stats().cache_hits, 5);
}

#[test]
fn cache_content_plaintext_vs_encoded_tradeoff() {
    // Same workload, two cache configurations; both correct, the Encoded
    // variant pays decode CPU per hit (the §III privacy/CPU trade-off).
    let server = CloudServer::start_local().unwrap();
    for content in [CacheContent::Plaintext, CacheContent::Encoded] {
        let client = EnhancedClient::new(CloudClient::connect(server.addr()))
            .with_cache(Arc::new(InProcessLru::new(16 << 20)))
            .with_codec(Box::new(AesCodec::aes128(&[1u8; 16])))
            .with_config(DsclConfig {
                cache_content: content,
                ..Default::default()
            });
        client.put("k", b"the same plaintext either way").unwrap();
        assert_eq!(
            client.get("k").unwrap().unwrap(),
            &b"the same plaintext either way"[..],
            "{content:?}"
        );
        client.clear().unwrap();
    }
}

#[test]
fn delta_chains_compose_under_the_enhanced_client() {
    // Full DSCL stack: cache → gzip → (delta chains → cloud). Edits ride
    // deltas to the server, reads hit the cache, and the payload on the
    // wire is compressed.
    use dscl_delta::DeltaChainStore;
    let server = slow_cloud(5.0);
    let chain = DeltaChainStore::new(CloudClient::connect(server.addr()), 6);
    let client = EnhancedClient::new(chain)
        .with_cache(Arc::new(InProcessLru::new(16 << 20)))
        .with_codec(Box::new(GzipCodec::default()));

    let mut doc = "chapter one: it was a dark and stormy night. "
        .repeat(400)
        .into_bytes();
    client.put("novel", &doc).unwrap();
    let (_, base_sent) = client.store().traffic.snapshot();

    // Cached read: no store traffic at all.
    assert_eq!(client.get("novel").unwrap().unwrap(), &doc[..]);
    let (read_bytes, _) = client.store().traffic.snapshot();

    // Small edit: the *gzipped* new doc differs wholesale from the old
    // gzipped doc? No — the delta layer sees the codec output, so this
    // also measures how delta-friendliness survives compression.
    doc[100..110].copy_from_slice(b"CHAPTER 1!");
    client.put("novel", &doc).unwrap();
    let (_, after_edit) = client.store().traffic.snapshot();
    assert_eq!(client.get("novel").unwrap().unwrap(), &doc[..]);

    println!(
        "base upload {base_sent} B, edit traffic {} B, read traffic {read_bytes} B",
        after_edit - base_sent
    );
    // Whatever the delta efficiency, correctness must hold after the mix.
    client.cache_invalidate("novel");
    assert_eq!(
        client.get("novel").unwrap().unwrap(),
        &doc[..],
        "store round-trip"
    );
}
