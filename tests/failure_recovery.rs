//! Failure-injection and recovery across the stack: database crash
//! recovery through the server, cache-outage degradation, TTL expiry at the
//! remote cache, and coordinator crash recovery.

use dscl::EnhancedClient;
use dscl_cache::Cache;
use kvapi::KeyValue;
use miniredis::{RemoteCache, Server as RedisServer};
use minisql::wal::SyncMode;
use minisql::{SqlKv, SqlServer, SqlServerConfig};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn sql_server_crash_recovery_end_to_end() {
    let dir = std::env::temp_dir().join(format!("udsm-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let addr;
    {
        let server = SqlServer::start(SqlServerConfig {
            data_dir: Some(dir.clone()),
            sync: SyncMode::Always,
            ..Default::default()
        })
        .unwrap();
        addr = server.addr();
        let kv = SqlKv::connect(addr).unwrap();
        for i in 0..25 {
            kv.put(&format!("k{i}"), format!("v{i}").as_bytes())
                .unwrap();
        }
        // Server drops here — an abrupt stop with a populated WAL.
    }
    // "Restart" on the same data directory.
    let server = SqlServer::start(SqlServerConfig {
        data_dir: Some(dir.clone()),
        sync: SyncMode::Always,
        ..Default::default()
    })
    .unwrap();
    let kv = SqlKv::connect(server.addr()).unwrap();
    assert_eq!(
        kv.stats().unwrap().keys,
        25,
        "all committed writes must survive"
    );
    assert_eq!(kv.get("k13").unwrap().unwrap(), &b"v13"[..]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn remote_cache_outage_degrades_reads_not_correctness() {
    let mut redis = RedisServer::start().unwrap();
    let primary = kvapi::mem::MemKv::new("primary");
    primary.put("k", b"authoritative").unwrap();
    let client =
        EnhancedClient::new(primary).with_cache(Arc::new(RemoteCache::connect(redis.addr())));
    assert_eq!(client.get("k").unwrap().unwrap(), &b"authoritative"[..]);
    assert_eq!(client.stats().cache_misses, 1);

    // Kill the cache tier. Reads keep working off the primary.
    redis.stop();
    for _ in 0..3 {
        assert_eq!(client.get("k").unwrap().unwrap(), &b"authoritative"[..]);
    }
    // Writes still succeed too (cache update is best-effort).
    client.put("k2", b"still writable").unwrap();
    assert_eq!(client.get("k2").unwrap().unwrap(), &b"still writable"[..]);
}

#[test]
fn server_side_ttl_expiry_works_through_the_cache_interface() {
    let redis = RedisServer::start().unwrap();
    let cache = RemoteCache::connect(redis.addr());
    // The DSCL manages logical expiry itself, but redis-native TTLs also
    // work when applications set them via the native client (the paper's
    // "native features" path).
    let native = miniredis::RedisClient::connect(redis.addr());
    native.set_px("cache:volatile", b"short-lived", 60).unwrap();
    assert!(cache.get("volatile").is_some());
    std::thread::sleep(Duration::from_millis(90));
    assert!(
        cache.get("volatile").is_none(),
        "server-side TTL must expire the entry"
    );
}

#[test]
fn eviction_under_memory_pressure_preserves_store_correctness() {
    // A tiny redis (20 KB) caching a much larger working set: heavy
    // eviction, zero wrong answers.
    let redis = miniredis::Server::start_with(miniredis::ServerConfig {
        max_memory: 20_000,
        ..Default::default()
    })
    .unwrap();
    let primary = kvapi::mem::MemKv::new("primary");
    let client =
        EnhancedClient::new(primary).with_cache(Arc::new(RemoteCache::connect(redis.addr())));
    for i in 0..100 {
        client
            .put(&format!("k{i}"), format!("value-{i}").repeat(60).as_bytes())
            .unwrap();
    }
    for i in (0..100).rev() {
        assert_eq!(
            client.get(&format!("k{i}")).unwrap().unwrap(),
            format!("value-{i}").repeat(60).as_bytes(),
            "eviction must never surface wrong data"
        );
    }
    let s = client.stats();
    assert!(
        s.cache_misses > 0,
        "with a 20 KB cache some reads must miss"
    );
}

#[test]
fn coordinator_crash_is_recoverable_per_store() {
    // Simulate a coordinator that died between prepare and cleanup by
    // driving the phases manually through a wrapper that fails cleanup.
    let store = kvapi::mem::MemKv::new("s");
    store.put("doc", b"old").unwrap();
    // Phase-1 residue:
    let stores: Vec<Arc<dyn KeyValue>> = vec![Arc::new(kvapi::mem::MemKv::new("other"))];
    udsm::coord::coordinated_put(&stores, "doc", b"new").unwrap();
    // Hand-craft residue on `store` as if it crashed mid-protocol:
    let intent = serde_json::json!({
        "txid": 99, "key": "doc", "value": b"new".to_vec(), "at_ms": 0
    });
    store
        .put("__udsm_intent__/doc", intent.to_string().as_bytes())
        .unwrap();
    let actions = udsm::coord::recover(&store).unwrap();
    assert_eq!(actions.len(), 1);
    assert_eq!(store.get("doc").unwrap().unwrap(), &b"new"[..]);
    assert!(store
        .keys()
        .unwrap()
        .iter()
        .all(|k| !k.starts_with("__udsm_intent__")));
}

#[test]
fn wal_checkpoint_cycle_survives_repeated_restarts() {
    let dir = std::env::temp_dir().join(format!("udsm-cycle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    for round in 0..3 {
        let server = SqlServer::start(SqlServerConfig {
            data_dir: Some(dir.clone()),
            sync: SyncMode::Os,
            ..Default::default()
        })
        .unwrap();
        server.database().set_checkpoint_threshold(2048);
        let kv = SqlKv::connect(server.addr()).unwrap();
        let expect = round * 40;
        assert_eq!(kv.stats().unwrap().keys, expect as u64, "round {round}");
        for i in 0..40 {
            kv.put(
                &format!("r{round}-k{i}"),
                b"some padding to grow the wal quickly",
            )
            .unwrap();
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn redis_warm_restart_from_snapshot() {
    // Paper §III: persist cache contents before shutdown so a restarted
    // cache comes up warm.
    let path = std::env::temp_dir().join(format!("udsm-warm-{}.mrdb", std::process::id()));
    let _ = std::fs::remove_file(&path);
    {
        let mut server = miniredis::Server::start_with(miniredis::ServerConfig {
            persistence: Some(path.clone()),
            ..Default::default()
        })
        .unwrap();
        let c = miniredis::RedisClient::connect(server.addr());
        c.set("warm1", b"survives").unwrap();
        c.set_px("volatile", b"dies soon", 40).unwrap();
        c.set("warm2", &vec![7u8; 5000]).unwrap();
        // Explicit SAVE also works over the wire.
        match c.exec(&[b"SAVE"]).unwrap() {
            miniredis::resp::Value::Simple(s) => assert!(s.starts_with("OK saved")),
            other => panic!("unexpected SAVE reply {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(60)); // let the TTL lapse
        server.stop(); // writes the final snapshot
    }
    // Restart on the same snapshot: warm values present, expired one gone.
    let server = miniredis::Server::start_with(miniredis::ServerConfig {
        persistence: Some(path.clone()),
        ..Default::default()
    })
    .unwrap();
    let c = miniredis::RedisClient::connect(server.addr());
    assert_eq!(c.get("warm1").unwrap().unwrap(), &b"survives"[..]);
    assert_eq!(c.get("warm2").unwrap().unwrap().len(), 5000);
    assert_eq!(
        c.get("volatile").unwrap(),
        None,
        "expired entries must not be resurrected"
    );
    std::fs::remove_file(&path).ok();
}
