//! Fleet federation acceptance (DESIGN.md §14).
//!
//! * Merging N per-node scrapes must equal one registry that saw every
//!   sample — bit-exact snapshots, so fleet p50/p99 are the true fleet
//!   percentiles, not an average of averages.
//! * Histogram quantiles are lossless *within bucket resolution*: the
//!   reported quantile always lands inside the log-linear bucket holding
//!   the exact rank-order statistic (property-style, seeded generator).
//! * A live three-server scrape: every protocol's metrics surface carries
//!   the stable `node="host:port"` identity label, federates over the
//!   wire, and feeds the SLO engine without loss.

use obs::hist::{bucket_high, bucket_index, bucket_low};
use obs::{parse_prometheus, Federation, FnSource, LatencyHistogram, Registry};
use std::time::Duration;
use udsm_suite::prelude::*;

/// Deterministic 64-bit LCG so the property runs are reproducible.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

/// Build one "node": a registry stamped with its identity label, fed with
/// `n` latency samples per op from the shared generator, mirrored into the
/// ground-truth histograms.
fn feed_node(
    node: usize,
    n: usize,
    rng: &mut Lcg,
    truth: &mut [(&str, LatencyHistogram)],
) -> String {
    let reg = Registry::new();
    reg.set_base_label("node", &format!("10.0.0.{node}:7000"));
    for (op, all) in truth.iter_mut() {
        let h = reg.histogram("fleet_op_duration_ns", &[("op", op)]);
        for _ in 0..n {
            // Span ~9 decades so many bucket sizes participate.
            let v = rng.next() % 1_000_000_000;
            h.record(v);
            all.record(v);
        }
        reg.counter("fleet_ops_total", &[("op", op)]).add(n as u64);
    }
    reg.render_prometheus()
}

#[test]
fn three_node_merge_equals_single_registry() {
    let mut rng = Lcg(0x5eed_0010);
    let mut truth = [
        ("get", LatencyHistogram::new()),
        ("put", LatencyHistogram::new()),
    ];
    let mut fed = Federation::new();
    for node in 0..3 {
        let text = feed_node(node, 800, &mut rng, &mut truth);
        fed.add_source(Box::new(FnSource::new(
            format!("10.0.0.{node}:7000"),
            move || Ok(text.clone()),
        )));
    }
    let view = fed.poll();
    assert!(view.errors.is_empty(), "{:?}", view.errors);
    for (op, all) in &truth {
        let expect = all.snapshot();
        let got = view
            .merged
            .histogram("fleet_op_duration_ns", &[("op", op)])
            .unwrap_or_else(|| panic!("merged histogram for op={op} missing"));
        // Bit-exact: buckets, count, sum, min, max all survive the
        // render -> parse -> merge pipeline.
        assert_eq!(got, &expect, "op={op}");
        for q in [0.50, 0.99, 0.999] {
            assert_eq!(got.quantile(q), expect.quantile(q), "op={op} q={q}");
        }
        assert_eq!(
            view.merged.counter("fleet_ops_total", &[("op", op)]),
            Some(2400)
        );
    }
    // The per-node view keeps each node's identity and its own counts.
    let per_node = view.per_node();
    assert_eq!(
        per_node.counter(
            "fleet_ops_total",
            &[("node", "10.0.0.1:7000"), ("op", "get")]
        ),
        Some(800)
    );
}

#[test]
fn merged_quantiles_land_in_the_exact_value_bucket() {
    // Property: for every q, the federated quantile lies inside the
    // log-linear bucket that holds the exact rank-order statistic of the
    // raw sample population — the "lossless within bucket resolution"
    // contract. Several seeds, uneven node sizes.
    for seed in [1u64, 42, 0xdead_beef, 0x5eed_cafe] {
        let mut rng = Lcg(seed);
        let mut raw: Vec<u64> = Vec::new();
        let mut fed = Federation::new();
        for (node, n) in [(0usize, 150usize), (1, 700), (2, 37)] {
            let reg = Registry::new();
            reg.set_base_label("node", &format!("n{node}"));
            let h = reg.histogram("lat_ns", &[]);
            for _ in 0..n {
                let v = rng.next() % 50_000_000;
                h.record(v);
                raw.push(v);
            }
            let text = reg.render_prometheus();
            fed.add_source(Box::new(FnSource::new(format!("n{node}"), move || {
                Ok(text.clone())
            })));
        }
        raw.sort_unstable();
        let view = fed.poll();
        let merged = view.merged.histogram("lat_ns", &[]).unwrap();
        assert_eq!(merged.count, raw.len() as u64);
        assert_eq!(merged.min, raw[0]);
        assert_eq!(merged.max, *raw.last().unwrap());
        for q in [0.01, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
            let rank = ((q * raw.len() as f64).ceil() as usize).max(1);
            let exact = raw[rank - 1];
            let got = merged.quantile(q);
            let bucket = bucket_index(exact);
            assert!(
                got >= bucket_low(bucket) && got <= bucket_high(bucket),
                "seed={seed} q={q}: quantile {got} outside bucket \
                 [{}, {}] of exact value {exact}",
                bucket_low(bucket),
                bucket_high(bucket),
            );
        }
    }
}

/// Spin up all three protocol servers, push traffic through their native
/// clients, and federate the real scrape surfaces (HTTP `GET /metrics`,
/// RESP `METRICS`, sql `METRICS`).
#[test]
fn live_three_server_scrape_federates_with_node_identity() {
    let redis = miniredis::Server::start().unwrap();
    let cloud = CloudServer::start_with_profile(netsim::Profile::Loopback, 1).unwrap();
    let sql = minisql::SqlServer::start_in_memory().unwrap();

    let rkv = RedisKv::connect(redis.addr());
    let ckv = CloudClient::connect(cloud.addr());
    let skv = SqlKv::connect(sql.addr()).unwrap();
    for i in 0..12 {
        let key = format!("fleet-{i}");
        let val = format!("value-{i}").into_bytes();
        rkv.put(&key, &val).unwrap();
        assert!(rkv.get(&key).unwrap().is_some());
        ckv.put(&key, &val).unwrap();
        assert!(ckv.get(&key).unwrap().is_some());
        skv.put(&key, &val).unwrap();
        assert!(skv.get(&key).unwrap().is_some());
    }

    // Satellite contract: every server's exposition text self-identifies
    // with the same stable node label the federation keys on.
    let scrapes = [
        (
            redis.addr(),
            miniredis::RedisClient::connect(redis.addr())
                .fetch_metrics()
                .unwrap(),
        ),
        (cloud.addr(), ckv.fetch_metrics().unwrap()),
        (
            sql.addr(),
            minisql::MiniSqlClient::connect(sql.addr())
                .fetch_metrics()
                .unwrap(),
        ),
    ];
    for (addr, text) in &scrapes {
        assert!(
            text.contains(&format!("node=\"{addr}\"")),
            "scrape of {addr} lacks its node identity label:\n{text}"
        );
        // And the text parses cleanly — the scrape surface is within the
        // parser's round-trip contract.
        parse_prometheus(text).unwrap();
    }

    let mut fed = Federation::new();
    let (ra, ca, sa) = (redis.addr(), cloud.addr(), sql.addr());
    fed.add_source(Box::new(FnSource::new(ra.to_string(), move || {
        miniredis::RedisClient::connect(ra)
            .fetch_metrics()
            .map_err(|e| e.to_string())
    })));
    fed.add_source(Box::new(FnSource::new(ca.to_string(), move || {
        CloudClient::connect(ca)
            .fetch_metrics()
            .map_err(|e| e.to_string())
    })));
    fed.add_source(Box::new(FnSource::new(sa.to_string(), move || {
        minisql::MiniSqlClient::connect(sa)
            .fetch_metrics()
            .map_err(|e| e.to_string())
    })));
    let view = fed.poll();
    assert!(view.errors.is_empty(), "{:?}", view.errors);
    assert_eq!(view.nodes.len(), 3);

    // Each node's protocol counters made it across, keyed by identity.
    let redis_node = &view.nodes[&ra.to_string()];
    assert!(
        redis_node
            .counters_matching("miniredis_commands_total", &[])
            .unwrap_or(0)
            >= 24
    );
    let cloud_node = &view.nodes[&ca.to_string()];
    assert!(
        cloud_node
            .counters_matching("cloudstore_requests_total", &[])
            .unwrap_or(0)
            >= 24
    );
    let sql_node = &view.nodes[&sa.to_string()];
    assert!(
        sql_node
            .counters_matching("minisql_statements_total", &[])
            .unwrap_or(0)
            >= 24
    );

    // Fleet-merged gauges sum (three servers in one process: merged RSS is
    // the per-node reading tripled), and merged duration histograms hold
    // every observation.
    let rss_one = redis_node
        .gauge("process_resident_memory_bytes", &[])
        .unwrap();
    let rss_fleet = view
        .merged
        .gauge("process_resident_memory_bytes", &[])
        .unwrap();
    assert!(
        rss_fleet >= rss_one,
        "merged {rss_fleet} < single {rss_one}"
    );
    let redis_lat = view
        .merged
        .histograms_matching("miniredis_command_duration_ns", &[])
        .unwrap();
    assert!(redis_lat.count >= 24, "{}", redis_lat.count);

    // The merged view drives the SLO engine: a generous latency objective
    // judges clean, totals reflect the window.
    let mut engine = obs::SloEngine::new(vec![obs::Objective::latency(
        "redis-cmds",
        "miniredis_command_duration_ns",
        &[],
        Duration::from_secs(5).as_nanos() as u64,
        0.99,
        Duration::from_secs(60),
    )]);
    let out = Registry::new();
    engine.evaluate(&view.merged, 1_000, &out);
    for i in 0..6 {
        rkv.put(&format!("more-{i}"), b"x").unwrap();
    }
    let view2 = fed.poll();
    let statuses = engine.evaluate(&view2.merged, 2_000, &out);
    assert_eq!(statuses.len(), 1);
    assert!(statuses[0].total >= 6, "window saw {}", statuses[0].total);
    assert_eq!(statuses[0].bad, 0);
    assert!(!statuses[0].alerting);
    assert!(
        out.gauge("slo_burn_rate_milli", &[("op", "redis-cmds")])
            .get()
            >= 0
    );
}
