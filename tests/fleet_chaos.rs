//! Fleet observability under chaos (DESIGN.md §14): kill one of three
//! cluster nodes mid-traffic and prove the whole detection pipeline —
//! heartbeat flips the federated `cluster_node_up` gauge within two probe
//! intervals, SLO burn rises over the merged view, and the flight
//! recorder holds both the health transition and the alert-linked trace.

use cluster::{health, ClusterClient, ClusterPolicy, HealthPolicy};
use kvapi::{Bytes, Etag, KeyValue, Result as KvResult, StoreError, Versioned};
use obs::{Federation, FleetView, FnSource, Objective, Registry, SloEngine};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An in-process store with a kill switch: dead nodes answer every call
/// with an error, exactly like a crashed process behind a live socket.
struct KillableStore {
    inner: kvapi::mem::MemKv,
    dead: AtomicBool,
}

impl KillableStore {
    fn new(name: &str) -> KillableStore {
        KillableStore {
            inner: kvapi::mem::MemKv::new(name),
            dead: AtomicBool::new(false),
        }
    }

    fn kill(&self) {
        self.dead.store(true, Ordering::Relaxed);
    }

    fn heal(&self) {
        self.dead.store(false, Ordering::Relaxed);
    }

    fn gate(&self) -> KvResult<()> {
        if self.dead.load(Ordering::Relaxed) {
            Err(StoreError::Closed)
        } else {
            Ok(())
        }
    }
}

impl KeyValue for KillableStore {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn put(&self, key: &str, value: &[u8]) -> KvResult<()> {
        self.gate()?;
        self.inner.put(key, value)
    }
    fn put_versioned(&self, key: &str, value: &[u8]) -> KvResult<Etag> {
        self.gate()?;
        self.inner.put_versioned(key, value)
    }
    fn get(&self, key: &str) -> KvResult<Option<Bytes>> {
        self.gate()?;
        self.inner.get(key)
    }
    fn get_versioned(&self, key: &str) -> KvResult<Option<Versioned>> {
        self.gate()?;
        self.inner.get_versioned(key)
    }
    fn delete(&self, key: &str) -> KvResult<bool> {
        self.gate()?;
        self.inner.delete(key)
    }
    fn keys(&self) -> KvResult<Vec<String>> {
        self.gate()?;
        self.inner.keys()
    }
    fn clear(&self) -> KvResult<()> {
        self.gate()?;
        self.inner.clear()
    }
}

/// The federated liveness reading for one member, if published yet.
fn node_up(view: &FleetView, node: &str) -> Option<i64> {
    view.merged
        .gauges_matching("cluster_node_up", &[("node", node)])
}

#[test]
fn killing_a_node_flips_health_raises_burn_and_links_traces() {
    let probe_interval = Duration::from_millis(150);
    let policy = HealthPolicy {
        interval: probe_interval,
        probe_timeout: Duration::from_millis(100),
        degraded_latency: Duration::from_millis(50),
    };

    let stores: Vec<Arc<KillableStore>> = (0..3)
        .map(|i| Arc::new(KillableStore::new(&format!("n{i}"))))
        .collect();
    let cluster = Arc::new(ClusterClient::from_stores(
        "fleet",
        stores
            .iter()
            .map(|s| (s.name().to_string(), s.clone() as Arc<dyn KeyValue>))
            .collect(),
        ClusterPolicy::test_profile(),
    ));
    let _heartbeat = cluster.start_heartbeat(policy);

    // Federate the cluster exactly as `udsm-cli top` does: one scrape
    // source publishing into a fresh registry per poll.
    let publisher = cluster.clone();
    let mut fed = Federation::new();
    fed.add_source(Box::new(FnSource::new("cluster", move || {
        let reg = Registry::new();
        publisher.publish(&reg);
        Ok(reg.render_prometheus())
    })));

    // Sustained read/write traffic for the whole scenario; failures after
    // the kill are the SLO engine's raw material.
    let stop = Arc::new(AtomicBool::new(false));
    let traffic = {
        let (cluster, stop) = (cluster.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut i = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let key = format!("chaos-{}", i % 40);
                let _ = cluster.put(&key, format!("v{i}").as_bytes());
                let _ = cluster.get(&key);
                i += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let mut engine = SloEngine::new(vec![Objective::availability(
        "cluster-avail",
        "cluster_node_requests_total",
        "cluster_node_failures_total",
        &[],
        0.999,
        Duration::from_secs(2),
    )
    .alert_at(2.0)]);
    let slo_out = Registry::new();
    let started = Instant::now();
    let evaluate = |engine: &mut SloEngine, view: &FleetView| {
        engine.evaluate(&view.merged, started.elapsed().as_millis() as u64, &slo_out)
    };

    // Phase 1: the heartbeat marks all three members live on the
    // federated surface.
    assert!(
        health::wait_until(Duration::from_secs(5), || {
            let view = fed.poll();
            evaluate(&mut engine, &view);
            (0..3).all(|i| node_up(&view, &format!("n{i}")) == Some(1))
        }),
        "heartbeat never marked all nodes up: {:?}",
        cluster.node_health()
    );

    // Phase 2: kill n1 and time detection on the *federated* gauge. A
    // probe round may be mid-flight at the kill, so the worst case is
    // that stale round plus one full fresh round: two probe intervals
    // (plus one probe timeout of in-flight budget as scheduling slack).
    stores[1].kill();
    let killed_at = Instant::now();
    assert!(
        health::wait_until(2 * probe_interval + Duration::from_millis(100), || {
            let view = fed.poll();
            evaluate(&mut engine, &view);
            node_up(&view, "n1") == Some(0)
        }),
        "n1 still up on the federated surface {:?} after the kill",
        killed_at.elapsed()
    );
    let detection = killed_at.elapsed();
    assert!(
        detection <= 2 * probe_interval + Duration::from_millis(100),
        "detection took {detection:?}, over the two-interval budget"
    );

    // The transition itself is in the flight recorder, answerably: which
    // node, which cluster, old and new state.
    let transition = obs::FlightRecorder::global()
        .recent(256)
        .into_iter()
        .find(|t| {
            t.origin == "cluster:fleet"
                && t.op == "node_health"
                && t.error.as_deref().is_some_and(|e| e.contains("n1"))
        });
    assert!(
        transition.is_some(),
        "no node_health down-transition trace for n1 in the recorder"
    );

    // Phase 3: burn rises over the merged view and the alert trace links
    // back through the recorder.
    assert!(
        health::wait_until(Duration::from_secs(5), || {
            let view = fed.poll();
            let statuses = evaluate(&mut engine, &view);
            statuses.iter().any(|s| s.burn_rate >= 2.0) && !engine.alerts().is_empty()
        }),
        "SLO burn never crossed the alert threshold after the kill"
    );
    let alert = engine.alerts().last().unwrap().clone();
    assert_eq!(alert.objective, "cluster-avail");
    assert!(alert.burn_rate >= 2.0, "{}", alert.burn_rate);
    let linked = obs::FlightRecorder::global().by_trace_id(alert.trace_id);
    assert!(
        !linked.is_empty(),
        "alert trace {:032x} not found in the recorder",
        alert.trace_id
    );
    assert!(linked.iter().any(|t| {
        t.origin == "slo"
            && t.op == "cluster-avail"
            && t.events.iter().any(|e| e.name == "slo_burn_alert")
    }));
    // The burn gauge is on the SLO output registry for scraping.
    assert!(
        slo_out
            .gauge("slo_burn_rate_milli", &[("op", "cluster-avail")])
            .get()
            >= 2000
    );

    // Phase 4: heal; the heartbeat brings the member back.
    stores[1].heal();
    assert!(
        health::wait_until(Duration::from_secs(10), || {
            let view = fed.poll();
            evaluate(&mut engine, &view);
            node_up(&view, "n1") == Some(1)
        }),
        "n1 never recovered after heal: {:?}",
        cluster.node_health()
    );

    stop.store(true, Ordering::Relaxed);
    traffic.join().unwrap();
}
