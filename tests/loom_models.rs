//! Exhaustive interleaving checks for the workspace's two lock-based hot
//! paths, run under the deterministic scheduler in the `loom` shim.
//!
//! The models reproduce the *locking protocol* of the production code —
//! `InProcessLru`'s per-shard map + byte accounting, and the clients'
//! `Mutex<Vec<Conn>>` checkout/checkin pool — with the I/O stripped out, so
//! the scheduler can enumerate every schedule of the lock operations. A pass
//! here means the invariant holds under *all* interleavings, not just the
//! ones a timing-based stress test happens to hit.

use loom::sync::{Arc, Mutex};
use loom::thread;

/// One cache shard: entries as (key, cost) plus the shard's byte counter,
/// guarded by a single lock exactly like `InProcessLru`'s shard struct.
#[derive(Default)]
struct Shard {
    entries: Vec<(u8, usize)>,
    used: usize,
}

impl Shard {
    fn put(&mut self, key: u8, cost: usize, budget: usize) {
        if let Some(pos) = self.entries.iter().position(|e| e.0 == key) {
            let (_, old) = self.entries.remove(pos);
            self.used -= old;
        }
        self.entries.push((key, cost));
        self.used += cost;
        // Evict-until-under, oldest first, never evicting the new entry.
        while self.used > budget && self.entries.len() > 1 {
            let (_, cost) = self.entries.remove(0);
            self.used -= cost;
        }
    }

    fn get(&mut self, key: u8) -> Option<usize> {
        let pos = self.entries.iter().position(|e| e.0 == key)?;
        // LRU touch: move to the back.
        let entry = self.entries.remove(pos);
        let cost = entry.1;
        self.entries.push(entry);
        Some(cost)
    }

    fn check(&self) {
        let sum: usize = self.entries.iter().map(|e| e.1).sum();
        assert_eq!(self.used, sum, "byte counter out of sync with entries");
        let mut keys: Vec<u8> = self.entries.iter().map(|e| e.0).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), self.entries.len(), "duplicate key in shard");
    }
}

/// Two writers hammer the same shard with put/get/evict; the byte counter
/// must match the entry costs and keys stay unique under every schedule.
#[test]
fn cache_shard_accounting_holds_under_all_interleavings() {
    loom::model(|| {
        const BUDGET: usize = 10;
        let shard = Arc::new(Mutex::new(Shard::default()));

        let s2 = shard.clone();
        let writer = thread::spawn(move || {
            s2.lock().put(1, 6, BUDGET);
            s2.lock().put(2, 6, BUDGET); // forces eviction of key 1
        });

        {
            shard.lock().put(3, 4, BUDGET);
            let _ = shard.lock().get(3);
            shard.lock().put(3, 5, BUDGET); // overwrite: must not double-count
        }

        writer.join().expect("writer");
        let g = shard.lock();
        g.check();
        assert!(g.used <= BUDGET, "budget exceeded after evict: {}", g.used);
    });
}

/// A get that releases the lock between lookup and touch would race with an
/// eviction; the production code holds the shard lock for the whole
/// operation. Model the *correct* protocol and assert it exhaustively.
#[test]
fn cache_get_during_evict_never_corrupts() {
    loom::model(|| {
        let shard = Arc::new(Mutex::new(Shard::default()));
        shard.lock().put(1, 3, 10);

        let s2 = shard.clone();
        let evictor = thread::spawn(move || {
            // Evict everything (budget 0 forces the loop) except the newest.
            s2.lock().put(2, 1, 0);
        });

        let got = shard.lock().get(1);
        // Key 1 is either still present (get ran first) or evicted; both are
        // valid outcomes, but the shard must be internally consistent.
        assert!(got.is_none() || got == Some(3));

        evictor.join().expect("evictor");
        shard.lock().check();
    });
}

/// Connection-pool checkout/checkin, mirroring `CloudClient`/`RedisClient`:
/// checkout pops an idle conn or opens a fresh one; checkin returns it only
/// while the pool is under `max_idle`. Invariants: the pool never exceeds
/// `max_idle`, and no connection id is ever pooled twice.
#[test]
fn pool_checkout_checkin_never_duplicates_or_overflows() {
    loom::model(|| {
        const MAX_IDLE: usize = 1;
        let pool = Arc::new(Mutex::new(Vec::<u32>::new()));
        let next_id = Arc::new(Mutex::new(0u32));

        let checkout = |pool: &Mutex<Vec<u32>>, next_id: &Mutex<u32>| -> u32 {
            if let Some(c) = pool.lock().pop() {
                return c;
            }
            let mut n = next_id.lock();
            *n += 1;
            *n
        };
        let checkin = |pool: &Mutex<Vec<u32>>, conn: u32| {
            let mut p = pool.lock();
            if p.len() < MAX_IDLE {
                p.push(conn);
            } // else: dropped, like closing the socket
        };

        let (p2, n2) = (pool.clone(), next_id.clone());
        let worker = thread::spawn(move || {
            let conn = checkout(&p2, &n2);
            checkin(&p2, conn);
            conn
        });

        let mine = checkout(&pool, &next_id);
        checkin(&pool, mine);
        let theirs = worker.join().expect("worker");

        let p = pool.lock();
        assert!(p.len() <= MAX_IDLE, "pool overflowed: {:?}", *p);
        let mut ids = p.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), p.len(), "same conn pooled twice: {:?}", *p);
        // Two workers open at most two connections total — a pool that
        // leaked or double-opened would mint higher ids.
        assert!((1..=2).contains(&mine) && (1..=2).contains(&theirs));
    });
}

/// Regression guard: taking the two shard locks in opposite orders from two
/// threads deadlocks, and the model checker must say so. This is the shape
/// the guard-across-io lint and the cache's single-lock-per-op design avoid.
#[test]
#[should_panic(expected = "deadlock")]
fn cross_shard_lock_inversion_is_reported_as_deadlock() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(0u8));
        let b = Arc::new(Mutex::new(0u8));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop(_ga);
        drop(_gb);
        t.join().expect("child");
    });
}
