//! Exhaustive interleaving checks for the workspace's two lock-based hot
//! paths, run under the deterministic scheduler in the `loom` shim.
//!
//! The models reproduce the *locking protocol* of the production code —
//! `InProcessLru`'s per-shard map + byte accounting, and the clients'
//! `Mutex<Vec<Conn>>` checkout/checkin pool — with the I/O stripped out, so
//! the scheduler can enumerate every schedule of the lock operations. A pass
//! here means the invariant holds under *all* interleavings, not just the
//! ones a timing-based stress test happens to hit.

use loom::sync::{Arc, Mutex};
use loom::thread;

/// One cache shard: entries as (key, cost) plus the shard's byte counter,
/// guarded by a single lock exactly like `InProcessLru`'s shard struct.
#[derive(Default)]
struct Shard {
    entries: Vec<(u8, usize)>,
    used: usize,
}

impl Shard {
    fn put(&mut self, key: u8, cost: usize, budget: usize) {
        if let Some(pos) = self.entries.iter().position(|e| e.0 == key) {
            let (_, old) = self.entries.remove(pos);
            self.used -= old;
        }
        self.entries.push((key, cost));
        self.used += cost;
        // Evict-until-under, oldest first, never evicting the new entry.
        while self.used > budget && self.entries.len() > 1 {
            let (_, cost) = self.entries.remove(0);
            self.used -= cost;
        }
    }

    fn get(&mut self, key: u8) -> Option<usize> {
        let pos = self.entries.iter().position(|e| e.0 == key)?;
        // LRU touch: move to the back.
        let entry = self.entries.remove(pos);
        let cost = entry.1;
        self.entries.push(entry);
        Some(cost)
    }

    fn check(&self) {
        let sum: usize = self.entries.iter().map(|e| e.1).sum();
        assert_eq!(self.used, sum, "byte counter out of sync with entries");
        let mut keys: Vec<u8> = self.entries.iter().map(|e| e.0).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), self.entries.len(), "duplicate key in shard");
    }
}

/// Two writers hammer the same shard with put/get/evict; the byte counter
/// must match the entry costs and keys stay unique under every schedule.
#[test]
fn cache_shard_accounting_holds_under_all_interleavings() {
    loom::model(|| {
        const BUDGET: usize = 10;
        let shard = Arc::new(Mutex::new(Shard::default()));

        let s2 = shard.clone();
        let writer = thread::spawn(move || {
            s2.lock().put(1, 6, BUDGET);
            s2.lock().put(2, 6, BUDGET); // forces eviction of key 1
        });

        {
            shard.lock().put(3, 4, BUDGET);
            let _ = shard.lock().get(3);
            shard.lock().put(3, 5, BUDGET); // overwrite: must not double-count
        }

        writer.join().expect("writer");
        let g = shard.lock();
        g.check();
        assert!(g.used <= BUDGET, "budget exceeded after evict: {}", g.used);
    });
}

/// A get that releases the lock between lookup and touch would race with an
/// eviction; the production code holds the shard lock for the whole
/// operation. Model the *correct* protocol and assert it exhaustively.
#[test]
fn cache_get_during_evict_never_corrupts() {
    loom::model(|| {
        let shard = Arc::new(Mutex::new(Shard::default()));
        shard.lock().put(1, 3, 10);

        let s2 = shard.clone();
        let evictor = thread::spawn(move || {
            // Evict everything (budget 0 forces the loop) except the newest.
            s2.lock().put(2, 1, 0);
        });

        let got = shard.lock().get(1);
        // Key 1 is either still present (get ran first) or evicted; both are
        // valid outcomes, but the shard must be internally consistent.
        assert!(got.is_none() || got == Some(3));

        evictor.join().expect("evictor");
        shard.lock().check();
    });
}

/// Connection-pool checkout/checkin, mirroring `CloudClient`/`RedisClient`:
/// checkout pops an idle conn or opens a fresh one; checkin returns it only
/// while the pool is under `max_idle`. Invariants: the pool never exceeds
/// `max_idle`, and no connection id is ever pooled twice.
#[test]
fn pool_checkout_checkin_never_duplicates_or_overflows() {
    loom::model(|| {
        const MAX_IDLE: usize = 1;
        let pool = Arc::new(Mutex::new(Vec::<u32>::new()));
        let next_id = Arc::new(Mutex::new(0u32));

        let checkout = |pool: &Mutex<Vec<u32>>, next_id: &Mutex<u32>| -> u32 {
            if let Some(c) = pool.lock().pop() {
                return c;
            }
            let mut n = next_id.lock();
            *n += 1;
            *n
        };
        let checkin = |pool: &Mutex<Vec<u32>>, conn: u32| {
            let mut p = pool.lock();
            if p.len() < MAX_IDLE {
                p.push(conn);
            } // else: dropped, like closing the socket
        };

        let (p2, n2) = (pool.clone(), next_id.clone());
        let worker = thread::spawn(move || {
            let conn = checkout(&p2, &n2);
            checkin(&p2, conn);
            conn
        });

        let mine = checkout(&pool, &next_id);
        checkin(&pool, mine);
        let theirs = worker.join().expect("worker");

        let p = pool.lock();
        assert!(p.len() <= MAX_IDLE, "pool overflowed: {:?}", *p);
        let mut ids = p.clone();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), p.len(), "same conn pooled twice: {:?}", *p);
        // Two workers open at most two connections total — a pool that
        // leaked or double-opened would mint higher ids.
        assert!((1..=2).contains(&mine) && (1..=2).contains(&theirs));
    });
}

/// Regression guard: taking the two shard locks in opposite orders from two
/// threads deadlocks, and the model checker must say so. This is the shape
/// the guard-across-io lint and the cache's single-lock-per-op design avoid.
#[test]
#[should_panic(expected = "deadlock")]
fn cross_shard_lock_inversion_is_reported_as_deadlock() {
    loom::model(|| {
        let a = Arc::new(Mutex::new(0u8));
        let b = Arc::new(Mutex::new(0u8));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _ga = a2.lock();
            let _gb = b2.lock();
        });
        let _gb = b.lock();
        let _ga = a.lock();
        drop(_ga);
        drop(_gb);
        t.join().expect("child");
    });
}

/// The mux transport's in-flight correlation table (`MuxState` in
/// `crates/rpc/src/mux.rs`), with the wire stripped out: a FIFO of
/// correlation ids plus an id → waiter map and a live-request counter,
/// all guarded by one `pending` lock. Delivery runs with the lock
/// released, exactly like `MuxState::complete`. The real counter is an
/// atomic; the loom shim models no atomics, so it lives in the same
/// table here — the protocol (who decrements, exactly once) is what is
/// being checked, not the memory ordering.
#[derive(Default)]
struct MuxTable {
    fifo: Vec<u64>,
    map: Vec<(u64, MuxWaiter)>,
    in_flight: usize,
}

enum MuxWaiter {
    /// A parked caller's completion slot (receives the reply payload).
    Waiting(Arc<Mutex<Option<u64>>>),
    /// Locally timed out; holds its place in reply order as a tombstone.
    Abandoned,
}

fn mux_register(tbl: &Mutex<MuxTable>, id: u64) -> Arc<Mutex<Option<u64>>> {
    let slot = Arc::new(Mutex::new(None));
    let mut t = tbl.lock();
    t.fifo.push(id);
    t.map.push((id, MuxWaiter::Waiting(slot.clone())));
    t.in_flight += 1;
    slot
}

/// Reactor side: one reply frame arrives carrying `echoed` as its
/// correlation id (and as its payload, so misdelivery is observable).
/// Matches by echoed id when known, else strict FIFO; completes with the
/// pending lock released. Returns false with nothing in flight.
fn mux_reply(tbl: &Mutex<MuxTable>, echoed: u64) -> bool {
    let taken = {
        let mut t = tbl.lock();
        let Some(&front) = t.fifo.first() else {
            return false;
        };
        let id = if t.map.iter().any(|e| e.0 == echoed) {
            echoed
        } else {
            front
        };
        t.fifo.retain(|&q| q != id);
        let pos = t.map.iter().position(|e| e.0 == id);
        pos.map(|p| t.map.remove(p).1)
    };
    match taken {
        Some(MuxWaiter::Waiting(slot)) => {
            tbl.lock().in_flight -= 1;
            *slot.lock() = Some(echoed);
            true
        }
        Some(MuxWaiter::Abandoned) | None => true,
    }
}

/// Caller side: deadline ran out. Tombstone the entry (it keeps its reply-
/// order position) and drop it from the live count — unless the reply got
/// there first, in which case the caller collects the imminent result.
fn mux_abandon(tbl: &Mutex<MuxTable>, id: u64) -> bool {
    let mut t = tbl.lock();
    let Some(pos) = t.map.iter().position(|e| e.0 == id) else {
        return false;
    };
    if matches!(t.map[pos].1, MuxWaiter::Abandoned) {
        return false;
    }
    t.map[pos].1 = MuxWaiter::Abandoned;
    t.in_flight -= 1;
    true
}

/// Out-of-order replies interleaved with a concurrent register+cancel:
/// every waiter gets exactly its own reply, the cancelled request gets
/// nothing, and the live count drains to zero under every schedule.
#[test]
fn mux_inflight_replies_never_misdeliver_under_any_interleaving() {
    loom::model(|| {
        let tbl = Arc::new(Mutex::new(MuxTable::default()));
        let slot1 = mux_register(&tbl, 1);
        let slot2 = mux_register(&tbl, 2);

        // Reactor thread: the server answers id 2 before id 1 (both echo
        // their correlation id, so matching is by id, not arrival order).
        let t2 = tbl.clone();
        let reactor = thread::spawn(move || {
            assert!(mux_reply(&t2, 2));
            assert!(mux_reply(&t2, 1));
        });

        // Caller thread (here: main) races a third request's register and
        // local timeout against both deliveries.
        let slot3 = mux_register(&tbl, 3);
        assert!(mux_abandon(&tbl, 3), "nobody else completes id 3");

        reactor.join().expect("reactor");

        assert_eq!(*slot1.lock(), Some(1), "waiter 1 got someone else's reply");
        assert_eq!(*slot2.lock(), Some(2), "waiter 2 got someone else's reply");
        assert_eq!(*slot3.lock(), None, "cancelled waiter must get nothing");
        let t = tbl.lock();
        assert_eq!(t.in_flight, 0, "live count leaked");
        // The tombstone keeps its reply-order position until its late
        // reply burns it.
        assert_eq!(t.fifo, vec![3]);
    });
}

/// The cancel/complete race: exactly one side wins. If abandon wins the
/// waiter sees nothing and the reply burns the tombstone; if the reply
/// wins the caller collects it and abandon reports too-late. Either way
/// the live count is decremented exactly once.
#[test]
fn mux_abandon_and_reply_race_resolves_exactly_once() {
    loom::model(|| {
        let tbl = Arc::new(Mutex::new(MuxTable::default()));
        let slot = mux_register(&tbl, 7);

        let t2 = tbl.clone();
        let reactor = thread::spawn(move || {
            assert!(mux_reply(&t2, 7));
        });

        let abandoned = mux_abandon(&tbl, 7);
        reactor.join().expect("reactor");

        let delivered = slot.lock().is_some();
        assert!(
            abandoned != delivered,
            "abandon={abandoned} delivered={delivered}: the waiter must be \
             resolved by exactly one side"
        );
        assert_eq!(tbl.lock().in_flight, 0, "double decrement or leak");
    });
}

/// The circuit breaker's permit protocol (`CircuitBreaker` in
/// `crates/resilience/src/breaker.rs`), time stripped out: the cooldown is
/// modelled as always elapsed, so an admit against an open breaker claims
/// the half-open probe immediately. Each state change bumps a generation;
/// only the probe permit of the current generation may close a half-open
/// breaker or re-open it, and `abandon` releases the probe slot without a
/// verdict — the invariants hedged reads lean on, since a hedge puts two
/// in-flight permits behind one logical op.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum BState {
    Closed,
    Open,
    HalfOpen,
}

#[derive(Clone, Copy)]
struct BPermit {
    probe: bool,
    generation: u64,
}

struct Breaker {
    state: BState,
    failures: u32,
    threshold: u32,
    probe_in_flight: bool,
    generation: u64,
    log: Vec<(BState, BState)>,
}

impl Breaker {
    fn new(threshold: u32) -> Breaker {
        Breaker {
            state: BState::Closed,
            failures: 0,
            threshold,
            probe_in_flight: false,
            generation: 0,
            log: Vec::new(),
        }
    }

    fn transition(&mut self, to: BState) {
        self.log.push((self.state, to));
        self.state = to;
        self.generation += 1;
    }
}

fn b_admit(b: &Mutex<Breaker>) -> Option<BPermit> {
    let mut g = b.lock();
    match g.state {
        BState::Closed => Some(BPermit {
            probe: false,
            generation: g.generation,
        }),
        BState::Open => {
            // Model time: the cooldown has always elapsed.
            g.transition(BState::HalfOpen);
            g.probe_in_flight = true;
            Some(BPermit {
                probe: true,
                generation: g.generation,
            })
        }
        BState::HalfOpen => {
            if g.probe_in_flight {
                None
            } else {
                g.probe_in_flight = true;
                Some(BPermit {
                    probe: true,
                    generation: g.generation,
                })
            }
        }
    }
}

fn b_success(b: &Mutex<Breaker>, p: BPermit) {
    let mut g = b.lock();
    match g.state {
        BState::Closed => g.failures = 0,
        BState::HalfOpen => {
            if p.probe && p.generation == g.generation {
                g.transition(BState::Closed);
                g.failures = 0;
                g.probe_in_flight = false;
            }
        }
        BState::Open => {}
    }
}

fn b_failure(b: &Mutex<Breaker>, p: BPermit) {
    let mut g = b.lock();
    match g.state {
        BState::HalfOpen => {
            if p.probe && p.generation == g.generation {
                g.probe_in_flight = false;
                g.transition(BState::Open);
            }
        }
        BState::Closed => {
            g.failures += 1;
            if g.failures >= g.threshold {
                g.transition(BState::Open);
            }
        }
        BState::Open => {}
    }
}

fn b_abandon(b: &Mutex<Breaker>, p: BPermit) {
    let mut g = b.lock();
    if p.probe && p.generation == g.generation && g.state == BState::HalfOpen {
        g.probe_in_flight = false;
    }
}

/// Two callers race against a cooled-down open breaker: under every
/// schedule exactly one is admitted as the probe and the other is shed,
/// and the probe's success drives the canonical open → half-open → closed
/// transition sequence with no detours.
#[test]
fn breaker_half_open_admits_exactly_one_probe_under_race() {
    loom::model(|| {
        let b = Arc::new(Mutex::new(Breaker::new(1)));
        // Trip the breaker: one failure past the (model) threshold.
        let p = b_admit(&b).expect("closed admits");
        b_failure(&b, p);
        assert_eq!(b.lock().state, BState::Open);

        let b2 = b.clone();
        let rival = thread::spawn(move || b_admit(&b2));

        let mine = b_admit(&b);
        let theirs = rival.join().expect("rival");

        let probes = [mine, theirs]
            .iter()
            .filter(|p| p.map(|p| p.probe).unwrap_or(false))
            .count();
        assert_eq!(probes, 1, "exactly one probe admitted under any schedule");
        assert_eq!(
            [mine, theirs].iter().filter(|p| p.is_none()).count(),
            1,
            "the non-probe caller is shed while the probe is in flight"
        );

        let probe = mine.or(theirs).expect("one of the two was admitted");
        b_success(&b, probe);
        let g = b.lock();
        assert_eq!(g.state, BState::Closed);
        assert_eq!(
            g.log,
            vec![
                (BState::Closed, BState::Open),
                (BState::Open, BState::HalfOpen),
                (BState::HalfOpen, BState::Closed),
            ],
            "canonical open → half-open → closed path"
        );
    });
}

/// The hedged-read shape: a slow hedge leg admitted while the breaker was
/// still closed reports its late failure *and* the winning probe is
/// abandoned (its logical op was answered by another replica), racing a
/// third caller's admit. The stale failure must never be recorded as a
/// probe verdict (no half-open → open transition), the abandon must free
/// the slot without a verdict, and the follow-up probe still closes the
/// breaker under every schedule.
#[test]
fn breaker_hedge_loser_never_counts_as_probe_failure() {
    loom::model(|| {
        let b = Arc::new(Mutex::new(Breaker::new(2)));
        // Hedge loser: admitted while closed, still in flight.
        let loser = b_admit(&b).expect("closed admits");
        // Two fast failures trip the breaker underneath it.
        for _ in 0..2 {
            let p = b_admit(&b).expect("closed admits");
            b_failure(&b, p);
        }
        assert_eq!(b.lock().state, BState::Open);
        // Cooldown (modelled as elapsed): this admit is the probe.
        let probe = b_admit(&b).expect("cooled breaker admits the probe");
        assert!(probe.probe);

        // Thread: the loser's transport error finally surfaces.
        let b2 = b.clone();
        let late = thread::spawn(move || b_failure(&b2, loser));

        // Main: the probe's logical op was won by the other hedge leg, so
        // the probe is abandoned — cancelled, not failed.
        b_abandon(&b, probe);

        late.join().expect("late failure");

        {
            let g = b.lock();
            assert!(
                !g.log.contains(&(BState::HalfOpen, BState::Open)),
                "a stale failure or an abandon was recorded as a probe \
                 verdict: {:?}",
                g.log
            );
            assert_eq!(g.state, BState::HalfOpen, "no verdict yet: still probing");
            assert!(!g.probe_in_flight, "abandon must release the probe slot");
        }

        // The released slot admits the next probe, which closes the breaker.
        let probe2 = b_admit(&b).expect("released slot admits a probe");
        assert!(probe2.probe);
        b_success(&b, probe2);
        assert_eq!(b.lock().state, BState::Closed);
    });
}

/// A reply with an unrecognized correlation id falls back to strict FIFO:
/// it completes the oldest unreplied request, never a newer one.
#[test]
fn mux_unlabeled_reply_goes_to_fifo_front() {
    loom::model(|| {
        let tbl = Arc::new(Mutex::new(MuxTable::default()));
        let slot1 = mux_register(&tbl, 1);

        let t2 = tbl.clone();
        let reactor = thread::spawn(move || {
            // Server echoes an id we never sent (or none at all).
            assert!(mux_reply(&t2, 99));
        });

        let slot2 = mux_register(&tbl, 2);
        reactor.join().expect("reactor");

        // Whichever registration order the schedule produced, the frame
        // went to the FIFO front — and id 1 registered before spawn, so
        // the front is always 1.
        assert_eq!(*slot1.lock(), Some(99));
        assert_eq!(*slot2.lock(), None);
        assert_eq!(tbl.lock().in_flight, 1);
    });
}
