//! Full-stack soak test: the enhanced client (cache + gzip + AES) over the
//! cloud store, hammered by concurrent threads with per-thread oracles,
//! while other threads exercise the SQL and redis stores through the same
//! common interface. Catches cross-layer races that unit tests cannot.

use cloudstore::{CloudClient, CloudServer};
use dscl::EnhancedClient;
use dscl_cache::InProcessLru;
use dscl_compress::GzipCodec;
use dscl_crypto::AesCodec;
use kvapi::KeyValue;
use miniredis::{RedisKv, Server as RedisServer};
use minisql::{SqlKv, SqlServer};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn concurrent_full_stack_soak() {
    let cloud_server = CloudServer::start_local().unwrap();
    let redis_server = RedisServer::start().unwrap();
    let sql_server = SqlServer::start_in_memory().unwrap();

    let enhanced = Arc::new(
        EnhancedClient::new(CloudClient::connect(cloud_server.addr()))
            .with_cache(Arc::new(InProcessLru::new(8 << 20))) // small: forces evictions
            .with_codec(Box::new(GzipCodec::default()))
            .with_codec(Box::new(AesCodec::aes128(&[0x55; 16])))
            .with_ttl(Duration::from_millis(40)), // short: forces revalidations
    );
    let redis: Arc<dyn KeyValue> = Arc::new(RedisKv::connect(redis_server.addr()));
    let sql: Arc<dyn KeyValue> = Arc::new(SqlKv::connect(sql_server.addr()).unwrap());

    let mut handles = Vec::new();
    // 4 threads on the enhanced cloud client, each with a private keyspace
    // and an exact oracle.
    for t in 0..4u32 {
        let client = enhanced.clone();
        handles.push(std::thread::spawn(move || {
            let mut oracle: std::collections::HashMap<String, Vec<u8>> = Default::default();
            let mut x = 0x9e3779b9u32 ^ t;
            for i in 0..150 {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                let key = format!("t{t}/k{}", x % 12);
                match x % 5 {
                    0 | 1 => {
                        let val = format!("t{t}-i{i}-{}", "payload ".repeat((x % 40) as usize));
                        client.put(&key, val.as_bytes()).unwrap();
                        oracle.insert(key, val.into_bytes());
                    }
                    2 | 3 => {
                        let got = client.get(&key).unwrap().map(|b| b.to_vec());
                        assert_eq!(got, oracle.get(&key).cloned(), "mismatch on {key}");
                    }
                    _ => {
                        let had = client.delete(&key).unwrap();
                        assert_eq!(had, oracle.remove(&key).is_some(), "delete {key}");
                    }
                }
                if i % 37 == 0 {
                    std::thread::sleep(Duration::from_millis(45)); // let TTLs expire
                }
            }
            // Final verification of every surviving key.
            for (k, v) in &oracle {
                assert_eq!(client.get(k).unwrap().unwrap(), &v[..]);
            }
            oracle.len()
        }));
    }
    // 2 threads on redis + sql through the plain interface.
    for (name, store) in [("redis", redis.clone()), ("sql", sql.clone())] {
        handles.push(std::thread::spawn(move || {
            for i in 0..200 {
                let key = format!("{name}/k{}", i % 20);
                store.put(&key, format!("{name}-{i}").as_bytes()).unwrap();
                let got = store.get(&key).unwrap().unwrap();
                assert!(got.starts_with(name.as_bytes()));
            }
            20
        }));
    }

    let mut total_keys = 0;
    for h in handles {
        total_keys += h.join().expect("soak worker panicked");
    }
    assert!(total_keys > 0);
    // The enhanced client did real caching work under pressure.
    // `Arc<EnhancedClient>` also implements `KeyValue`, whose `stats()`
    // would shadow the inherent one here — disambiguate.
    let stats = dscl::EnhancedClient::stats(&enhanced);
    assert!(stats.cache_hits > 0, "no cache hits in soak: {stats:?}");
    assert!(
        stats.revalidations > 0,
        "short TTLs should have forced revalidations: {stats:?}"
    );
    // And the payloads on the wire were really transformed: spot-check one.
    if let Some(key) = enhanced.keys().unwrap().first() {
        let raw = enhanced.store().get(key).unwrap().unwrap();
        assert!(!raw.windows(7).any(|w| w == b"payload"), "plaintext leaked");
    }
}
