//! One conformance suite, every store — the executable form of the paper's
//! claim that all stores are interchangeable behind the common key-value
//! interface. Each store also re-runs the suite wrapped in the enhanced
//! client (with caching, compression, and encryption) and in the monitor,
//! because wrappers must be behaviorally invisible.

use cloudstore::{CloudClient, CloudServer};
use dscl::EnhancedClient;
use dscl_cache::InProcessLru;
use dscl_compress::GzipCodec;
use dscl_crypto::AesCodec;
use fskv::FsKv;
use kvapi::contract;
use kvapi::KeyValue;
use miniredis::{RedisKv, Server as RedisServer};
use minisql::{SqlKv, SqlServer};
use std::sync::Arc;
use udsm::MonitoredStore;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("contract-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&p).unwrap();
    p
}

#[test]
fn fskv_contract() {
    let dir = temp_dir("fskv");
    contract::run_all_concurrent(Arc::new(FsKv::open(&dir).unwrap()));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn minisql_contract() {
    let server = SqlServer::start_in_memory().unwrap();
    contract::run_all_concurrent(Arc::new(SqlKv::connect(server.addr()).unwrap()));
}

#[test]
fn miniredis_contract() {
    let server = RedisServer::start().unwrap();
    contract::run_all_concurrent(Arc::new(RedisKv::connect(server.addr())));
}

#[test]
fn cloudstore_contract() {
    let server = CloudServer::start_local().unwrap();
    contract::run_all_concurrent(Arc::new(CloudClient::connect(server.addr())));
}

#[test]
fn enhanced_client_over_every_store_still_conforms() {
    // The full stack: gzip → AES → store, with a write-through cache.
    let redis = RedisServer::start().unwrap();
    let cloud = CloudServer::start_local().unwrap();
    let sql = SqlServer::start_in_memory().unwrap();
    let dir = temp_dir("enh");
    let stores: Vec<(&str, Arc<dyn KeyValue>)> = vec![
        ("fskv", Arc::new(FsKv::open(&dir).unwrap())),
        ("minisql", Arc::new(SqlKv::connect(sql.addr()).unwrap())),
        ("redis", Arc::new(RedisKv::connect(redis.addr()))),
        ("cloud", Arc::new(CloudClient::connect(cloud.addr()))),
    ];
    for (name, store) in stores {
        let client = EnhancedClient::new(store)
            .with_cache(Arc::new(InProcessLru::new(32 << 20)))
            .with_codec(Box::new(GzipCodec::default()))
            .with_codec(Box::new(AesCodec::aes128(&[9u8; 16])));
        contract::run_all(&client);
        println!("enhanced({name}) conforms");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn monitored_store_is_transparent() {
    let server = RedisServer::start().unwrap();
    let monitored = MonitoredStore::new(RedisKv::connect(server.addr()), 64);
    contract::run_all(&monitored);
    let report = monitored.report();
    assert!(report.summary(udsm::OpKind::Put).count > 0);
    assert!(report.summary(udsm::OpKind::Get).count > 0);
}

// ---------------------------------------------------------------------------
// Cluster layer: the router is itself a KeyValue and must conform too.
// ---------------------------------------------------------------------------

mod cluster_conformance {
    use super::*;
    use cluster::{ClusterClient, ClusterPolicy, HashRing};
    use kvapi::mem::MemKv;
    use kvapi::{Bytes, Result as KvResult, StoreError, Versioned};
    use std::sync::atomic::{AtomicBool, Ordering};

    fn mem_cluster(n: usize) -> ClusterClient {
        let stores = (0..n)
            .map(|i| {
                let name = format!("node-{i}");
                (
                    name.clone(),
                    Arc::new(MemKv::new(name)) as Arc<dyn KeyValue>,
                )
            })
            .collect();
        ClusterClient::from_stores("mem-cluster", stores, ClusterPolicy::test_profile())
    }

    /// The full kv contract over a three-node in-process cluster:
    /// sharding, replication and failover must be behaviorally invisible.
    #[test]
    fn cluster_contract() {
        contract::run_all(&mem_cluster(3));
    }

    #[test]
    fn cluster_contract_concurrent() {
        contract::run_all_concurrent(Arc::new(mem_cluster(3)));
    }

    /// The same router over real remote stores: three miniredis servers
    /// behind the cluster, full contract.
    #[test]
    fn cluster_over_miniredis_conforms() {
        let servers: Vec<RedisServer> = (0..3).map(|_| RedisServer::start().unwrap()).collect();
        let stores = servers
            .iter()
            .enumerate()
            .map(|(i, s)| {
                (
                    format!("node-{i}"),
                    Arc::new(RedisKv::connect_with_policy(
                        s.addr(),
                        resilience::ResiliencePolicy::test_profile(),
                    )) as Arc<dyn KeyValue>,
                )
            })
            .collect();
        let c = ClusterClient::from_stores("redis-cluster", stores, ClusterPolicy::test_profile());
        contract::run_all(&c);
    }

    /// A node whose reads and writes can be cut, for partial-failure
    /// semantics tests.
    struct CuttableStore {
        inner: MemKv,
        cut: AtomicBool,
    }

    impl CuttableStore {
        fn new(name: &str) -> CuttableStore {
            CuttableStore {
                inner: MemKv::new(name),
                cut: AtomicBool::new(false),
            }
        }

        fn gate(&self) -> KvResult<()> {
            if self.cut.load(Ordering::Relaxed) {
                Err(StoreError::Closed)
            } else {
                Ok(())
            }
        }
    }

    impl KeyValue for CuttableStore {
        fn name(&self) -> &str {
            self.inner.name()
        }
        fn put(&self, key: &str, value: &[u8]) -> KvResult<()> {
            self.gate()?;
            self.inner.put(key, value)
        }
        fn put_versioned(&self, key: &str, value: &[u8]) -> KvResult<kvapi::Etag> {
            self.gate()?;
            self.inner.put_versioned(key, value)
        }
        fn get(&self, key: &str) -> KvResult<Option<Bytes>> {
            self.gate()?;
            self.inner.get(key)
        }
        fn get_versioned(&self, key: &str) -> KvResult<Option<Versioned>> {
            self.gate()?;
            self.inner.get_versioned(key)
        }
        fn delete(&self, key: &str) -> KvResult<bool> {
            self.gate()?;
            self.inner.delete(key)
        }
        fn keys(&self) -> KvResult<Vec<String>> {
            self.gate()?;
            self.inner.keys()
        }
        fn clear(&self) -> KvResult<()> {
            self.gate()?;
            self.inner.clear()
        }
    }

    /// Batch ops spanning shards under a two-node outage. The contract:
    /// `try_get_many`/`try_put_many` return one verdict per position —
    /// keys with a reachable owner succeed, fully-orphaned keys fail with
    /// their own error; the `get_many`/`put_many` facades surface the
    /// first error (all-or-error), and entries that landed before a
    /// failing one are NOT rolled back (documented partial effects).
    #[test]
    fn cluster_batch_partial_failure_gives_per_key_verdicts() {
        let stores: Vec<Arc<CuttableStore>> = (0..3)
            .map(|i| Arc::new(CuttableStore::new(&format!("node-{i}"))))
            .collect();
        let policy = ClusterPolicy::test_profile();
        let vnodes = policy.vnodes;
        let c = ClusterClient::from_stores(
            "cut-cluster",
            stores
                .iter()
                .map(|s| (s.name().to_string(), s.clone() as Arc<dyn KeyValue>))
                .collect(),
            policy,
        );
        let keys: Vec<String> = (0..30).map(|i| format!("key-{i}")).collect();
        let refs: Vec<&str> = keys.iter().map(|k| k.as_str()).collect();
        let entries: Vec<(&str, &[u8])> = refs.iter().map(|&k| (k, b"v".as_slice())).collect();
        c.put_many(&entries).unwrap();

        // Kill nodes 1 and 2: keys owned by {1,2} are orphaned, keys with
        // node-0 as an owner keep a live replica. With 30 keys and three
        // owner pairs both classes occur (the ring is deterministic).
        let ring = HashRing::new(
            &(0..3).map(|i| format!("node-{i}")).collect::<Vec<_>>(),
            vnodes,
        );
        let orphaned: Vec<&str> = refs
            .iter()
            .copied()
            .filter(|k| !ring.owners(k, 2).contains(&0))
            .collect();
        let reachable: Vec<&str> = refs
            .iter()
            .copied()
            .filter(|k| ring.owners(k, 2).contains(&0))
            .collect();
        assert!(
            !orphaned.is_empty() && !reachable.is_empty(),
            "need both classes: {} orphaned / {} reachable",
            orphaned.len(),
            reachable.len()
        );
        stores[1].cut.store(true, Ordering::Relaxed);
        stores[2].cut.store(true, Ordering::Relaxed);

        // Reads: per-key verdicts line up with ownership.
        let per_key = c.try_get_many(&refs);
        assert_eq!(per_key.len(), refs.len());
        for (k, verdict) in refs.iter().zip(&per_key) {
            if ring.owners(k, 2).contains(&0) {
                assert_eq!(
                    verdict.as_ref().unwrap().as_deref(),
                    Some(b"v".as_slice()),
                    "reachable key {k} must succeed"
                );
            } else {
                assert!(verdict.is_err(), "orphaned key {k} must carry its error");
            }
        }
        // The all-or-error facade fails the whole batch on the first error.
        assert!(c.get_many(&refs).is_err());

        // Writes: reachable keys land (partially — marked dirty for
        // read-repair), orphaned keys report errors positionally.
        let new_entries: Vec<(&str, &[u8])> = refs.iter().map(|&k| (k, b"v2".as_slice())).collect();
        let verdicts = c.try_put_many(&new_entries);
        for (k, verdict) in refs.iter().zip(&verdicts) {
            if ring.owners(k, 2).contains(&0) {
                assert!(verdict.is_ok(), "reachable key {k}: {verdict:?}");
            } else {
                assert!(verdict.is_err(), "orphaned key {k} must fail the write");
            }
        }
        assert!(c.put_many(&new_entries).is_err(), "facade surfaces error");
        // Partial effects are real: a reachable key already holds v2 even
        // though the batch as a whole errored.
        if let Some(k) = reachable.first() {
            assert_eq!(c.get(k).unwrap().as_deref(), Some(b"v2".as_slice()));
            assert!(c.is_dirty(k), "partial write left a dirty mark");
        }

        // Heal: per-key reads recover and repair clears dirt on touch.
        stores[1].cut.store(false, Ordering::Relaxed);
        stores[2].cut.store(false, Ordering::Relaxed);
        std::thread::sleep(std::time::Duration::from_millis(150));
        let healed = c.try_get_many(&refs);
        assert!(healed.iter().all(|r| r.is_ok()), "all keys recover");
    }
}
