//! One conformance suite, every store — the executable form of the paper's
//! claim that all stores are interchangeable behind the common key-value
//! interface. Each store also re-runs the suite wrapped in the enhanced
//! client (with caching, compression, and encryption) and in the monitor,
//! because wrappers must be behaviorally invisible.

use cloudstore::{CloudClient, CloudServer};
use dscl::EnhancedClient;
use dscl_cache::InProcessLru;
use dscl_compress::GzipCodec;
use dscl_crypto::AesCodec;
use fskv::FsKv;
use kvapi::contract;
use kvapi::KeyValue;
use miniredis::{RedisKv, Server as RedisServer};
use minisql::{SqlKv, SqlServer};
use std::sync::Arc;
use udsm::MonitoredStore;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let p = std::env::temp_dir().join(format!("contract-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&p).unwrap();
    p
}

#[test]
fn fskv_contract() {
    let dir = temp_dir("fskv");
    contract::run_all_concurrent(Arc::new(FsKv::open(&dir).unwrap()));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn minisql_contract() {
    let server = SqlServer::start_in_memory().unwrap();
    contract::run_all_concurrent(Arc::new(SqlKv::connect(server.addr()).unwrap()));
}

#[test]
fn miniredis_contract() {
    let server = RedisServer::start().unwrap();
    contract::run_all_concurrent(Arc::new(RedisKv::connect(server.addr())));
}

#[test]
fn cloudstore_contract() {
    let server = CloudServer::start_local().unwrap();
    contract::run_all_concurrent(Arc::new(CloudClient::connect(server.addr())));
}

#[test]
fn enhanced_client_over_every_store_still_conforms() {
    // The full stack: gzip → AES → store, with a write-through cache.
    let redis = RedisServer::start().unwrap();
    let cloud = CloudServer::start_local().unwrap();
    let sql = SqlServer::start_in_memory().unwrap();
    let dir = temp_dir("enh");
    let stores: Vec<(&str, Arc<dyn KeyValue>)> = vec![
        ("fskv", Arc::new(FsKv::open(&dir).unwrap())),
        ("minisql", Arc::new(SqlKv::connect(sql.addr()).unwrap())),
        ("redis", Arc::new(RedisKv::connect(redis.addr()))),
        ("cloud", Arc::new(CloudClient::connect(cloud.addr()))),
    ];
    for (name, store) in stores {
        let client = EnhancedClient::new(store)
            .with_cache(Arc::new(InProcessLru::new(32 << 20)))
            .with_codec(Box::new(GzipCodec::default()))
            .with_codec(Box::new(AesCodec::aes128(&[9u8; 16])));
        contract::run_all(&client);
        println!("enhanced({name}) conforms");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn monitored_store_is_transparent() {
    let server = RedisServer::start().unwrap();
    let monitored = MonitoredStore::new(RedisKv::connect(server.addr()), 64);
    contract::run_all(&monitored);
    let report = monitored.report();
    assert!(report.summary(udsm::OpKind::Put).count > 0);
    assert!(report.summary(udsm::OpKind::Get).count > 0);
}
