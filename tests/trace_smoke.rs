//! Trace pipeline smoke test — the CI gate for end-to-end distributed
//! tracing. One small sweep through the full stack (enhanced client →
//! cloudstore over real HTTP) must produce:
//!
//! 1. joined traces retrievable as JSON via `GET /trace`;
//! 2. Prometheus histogram exemplars in `GET /metrics` whose trace ids
//!    resolve in the flight recorder;
//! 3. a recorder that retained every error while staying inside its byte
//!    ceiling.

use std::sync::Arc;
use std::time::{Duration, Instant};

use cloudstore::{CloudClient, CloudServer, Request};
use dscl::EnhancedClient;
use dscl_cache::InProcessLru;
use dscl_compress::GzipCodec;
use kvapi::KeyValue;
use netsim::FaultModel;
use resilience::ResiliencePolicy;

#[test]
fn sweep_produces_joined_traces_exported_over_http_with_resolving_exemplars() {
    let server = CloudServer::start_local().unwrap();
    // The enhanced client publishes into the SERVER's registry, so one
    // `GET /metrics` scrape shows client stage histograms (with exemplars)
    // next to the server's own counters.
    let reg = server.registry().clone();
    let client = EnhancedClient::new(CloudClient::connect_with(
        server.addr(),
        ResiliencePolicy::test_profile(),
        kvapi::Transport::Blocking,
    ))
    .with_cache(Arc::new(InProcessLru::new(4 << 20)))
    .with_codec(Box::new(GzipCodec::default()))
    .with_registry(reg.clone());

    // Small mixed sweep: puts and gets across a few sizes.
    let payload = "trace smoke payload ".repeat(64);
    for i in 0..20 {
        let key = format!("smoke-{}", i % 5);
        client.put(&key, payload.as_bytes()).unwrap();
        assert!(client.get(&key).unwrap().is_some());
    }

    // Fault phase. Every failing op below errors, so the tail sampler
    // retains it 100%, and burns retry backoffs, so it is by far the
    // slowest op of its kind (the local server injects zero latency) —
    // making it the exemplar for its latency histogram. Everything
    // asserted afterwards is therefore deterministic.
    //
    // First the put exemplar, on a separate endpoint client so its breaker
    // state doesn't interact with the get story below.
    server.fault_injector().set_model(FaultModel::outage());
    let put_client = EnhancedClient::new(CloudClient::connect_with(
        server.addr(),
        ResiliencePolicy::test_profile(),
        kvapi::Transport::Blocking,
    ))
    .with_registry(reg.clone());
    let put_root = obs::TraceContext::new_root();
    let put_scope = obs::ctx::activate(put_root);
    assert!(put_client.put("smoke-0", b"x").is_err());
    put_scope.finish();

    // Now one joined trace telling a whole incident story, as two child
    // ops of a single root: (1) a get against the refused endpoint burns
    // the retry budget and opens the breaker; (2) after the cooldown, the
    // half-open probe reaches the server, which answers 500 — carrying its
    // server-side span back — and the breaker closes again.
    // Sever the pooled connections too — refusal only affects new ones.
    server.drop_connections();
    let root = obs::TraceContext::new_root();
    let scope = obs::ctx::activate(root);
    let t0 = Instant::now();
    assert!(client.get("never-stored").is_err(), "outage must surface");
    let slow_elapsed = t0.elapsed();
    server.fault_injector().set_model(FaultModel {
        error_prob: 1.0,
        ..FaultModel::none()
    });
    std::thread::sleep(Duration::from_millis(150)); // breaker cooldown
    assert!(
        client.get("never-stored-2").is_err(),
        "injected 500 must surface"
    );
    scope.finish();
    server.fault_injector().set_model(FaultModel::none());

    // Both failed child ops reached the recorder, joined to our trace.
    let recs = obs::FlightRecorder::global().by_trace_id(root.trace_id);
    let dscl_recs: Vec<_> = recs.iter().filter(|r| r.origin == "dscl").collect();
    assert_eq!(dscl_recs.len(), 2, "both failing gets retained: {recs:?}");
    for r in &dscl_recs {
        assert!(r.error.is_some());
        assert_eq!(r.ctx.unwrap().parent_id, Some(root.span_id));
    }
    let events: Vec<_> = dscl_recs.iter().flat_map(|r| &r.events).collect();
    let retries = events.iter().filter(|e| e.name == "retry").count();
    assert_eq!(retries, 2, "2 forced retries in the trace: {events:?}");
    assert!(
        events
            .iter()
            .any(|e| e.name == "breaker" && e.detail == "closed→open"),
        "breaker opening missing from the trace: {events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| e.name == "breaker" && e.detail.ends_with("→closed")),
        "breaker re-close missing from the trace: {events:?}"
    );
    // The half-open probe's 500 still carried the server's span home.
    let spans: Vec<_> = dscl_recs.iter().flat_map(|r| &r.server_spans).collect();
    assert_eq!(spans.len(), 1, "one reply arrived, one span: {recs:?}");
    assert_eq!(spans[0].server, "cloudstore");

    // `GET /trace` exports the recorder as JSON, including our trace.
    let raw = CloudClient::connect(server.addr());
    let resp = raw.round_trip(&Request::new("GET", "/trace")).unwrap();
    assert_eq!(resp.status, 200);
    let body = String::from_utf8(resp.body).unwrap();
    let id_hex = format!("{:032x}", root.trace_id);
    assert!(
        body.contains(&id_hex),
        "GET /trace missing trace {id_hex}: {body}"
    );

    // `GET /metrics` carries an exemplar on the get-latency histogram, and
    // it names our slow trace (which resolves in the recorder).
    let resp = raw.round_trip(&Request::new("GET", "/metrics")).unwrap();
    assert_eq!(resp.status, 200);
    let metrics = String::from_utf8(resp.body).unwrap();
    assert!(
        metrics.contains("dscl_op_duration_ns"),
        "client histograms missing from the server scrape:\n{metrics}"
    );
    let exemplar_ids: Vec<u128> = metrics
        .lines()
        .filter_map(|l| l.split("trace_id=\"").nth(1))
        .filter_map(|rest| rest.split('"').next())
        .filter_map(|hex| u128::from_str_radix(hex, 16).ok())
        .collect();
    assert!(
        !exemplar_ids.is_empty(),
        "no exemplars in the scrape:\n{metrics}"
    );
    assert!(
        exemplar_ids.contains(&root.trace_id),
        "slowest get ({slow_elapsed:?}) should be the exemplar; ids: {exemplar_ids:?}"
    );
    for id in &exemplar_ids {
        assert!(
            !obs::FlightRecorder::global().by_trace_id(*id).is_empty(),
            "exemplar trace {id:032x} does not resolve in the recorder"
        );
    }

    // Recorder hygiene: everything was seen, errors kept, memory bounded.
    let rec = obs::FlightRecorder::global();
    assert!(rec.seen() > 0);
    assert!(
        rec.bytes_used() <= rec.byte_ceiling(),
        "recorder over its byte ceiling: {} > {}",
        rec.bytes_used(),
        rec.byte_ceiling()
    );
}
