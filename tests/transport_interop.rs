//! Mixed-version interop and mid-multiplex chaos for the transport-split
//! client API.
//!
//! "Old" here means the pre-reactor generation: servers running the
//! thread-per-connection loop (`legacy_threads: true`) and clients pinned
//! to the blocking transport, whose wire shape carries no correlation ids.
//! Every pairing of {old, new} client × {old, new} server must
//! interoperate, because rollouts upgrade one side at a time.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use cloudstore::{CloudClient, CloudServer, CloudServerConfig};
use kvapi::{KeyValue, RpcClient, StoreError, Transport};
use minisql::{MiniSqlClient, SqlServer, SqlServerConfig};
use resilience::ResiliencePolicy;

fn legacy_cloud() -> CloudServer {
    CloudServer::start(CloudServerConfig {
        legacy_threads: true,
        ..Default::default()
    })
    .unwrap()
}

fn legacy_sql() -> SqlServer {
    SqlServer::start(SqlServerConfig {
        legacy_threads: true,
        ..Default::default()
    })
    .unwrap()
}

/// New clients, old servers: both transports against the historical
/// thread-per-connection builds. The multiplexed client's correlation ids
/// ride headers/fields the old serving loop already echoes, so an
/// upgraded client needs nothing from the server it talks to.
#[test]
fn both_transports_interoperate_with_legacy_threaded_servers() {
    let cloud = legacy_cloud();
    let sql = legacy_sql();
    for transport in [Transport::Blocking, Transport::Multiplexed] {
        let c =
            CloudClient::connect_with(cloud.addr(), ResiliencePolicy::test_profile(), transport);
        assert_eq!(RpcClient::transport(&c), transport);
        let key = format!("legacy/{transport:?}");
        c.put(&key, b"from the future").unwrap();
        assert_eq!(
            c.get(&key).unwrap().as_deref(),
            Some(b"from the future".as_ref())
        );
        assert!(c.contains(&key).unwrap(), "HEAD against the legacy loop");

        let s =
            MiniSqlClient::connect_with(sql.addr(), ResiliencePolicy::test_profile(), transport);
        let table = format!("t_{}", format!("{transport:?}").to_lowercase());
        s.execute(&format!(
            "CREATE TABLE {table} (id INTEGER PRIMARY KEY, v TEXT)"
        ))
        .unwrap();
        s.execute(&format!("INSERT INTO {table} (id, v) VALUES (1, 'x')"))
            .unwrap();
        let rs = s.execute(&format!("SELECT v FROM {table}")).unwrap();
        assert_eq!(rs.rows.len(), 1);
    }
}

/// Old clients, new servers: the blocking transport never allocates a
/// correlation id, so its requests are byte-identical to the previous
/// generation's — the reactor servers must serve them unchanged.
#[test]
fn old_wire_clients_interoperate_with_reactor_servers() {
    let cloud = CloudServer::start_local().unwrap();
    let c = CloudClient::connect_with(
        cloud.addr(),
        ResiliencePolicy::test_profile(),
        Transport::Blocking,
    );
    assert!(c.sender().next_correlation_id().is_none(), "old wire shape");
    c.put("k", b"v").unwrap();
    assert_eq!(c.get("k").unwrap().as_deref(), Some(b"v".as_ref()));

    let sql = SqlServer::start_in_memory().unwrap();
    let s = MiniSqlClient::connect_with(
        sql.addr(),
        ResiliencePolicy::test_profile(),
        Transport::Blocking,
    );
    s.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        .unwrap();
    s.execute("INSERT INTO t (id) VALUES (7)").unwrap();
    assert_eq!(s.execute("SELECT id FROM t").unwrap().rows.len(), 1);
}

/// Chaos: the server severs every connection while a multiplexed client
/// has several requests in flight on its one shared socket. Each in-flight
/// request must fail exactly once (no hang, no lost waiter, no duplicate
/// completion) and the sender must recover on a fresh connection.
#[test]
fn dropped_connection_mid_multiplex_fails_all_in_flight_exactly_once() {
    // 150 ms of injected RTT keeps requests in flight long enough to be
    // severed deterministically.
    let server = CloudServer::start(CloudServerConfig {
        latency: netsim::LatencyModel {
            base_rtt_ms: 150.0,
            jitter_sigma: 0.0,
            bandwidth_bps: f64::INFINITY,
            contention_prob: 0.0,
            contention_mult: 1.0,
            service_ms: 0.0,
        },
        ..Default::default()
    })
    .unwrap();
    // No retries: every observed outcome is one attempt, so "fails exactly
    // once" is directly visible at the call site.
    let mut policy = ResiliencePolicy::test_profile();
    policy.retry = resilience::RetryPolicy::no_retry();
    let client = Arc::new(CloudClient::connect_with(
        server.addr(),
        policy,
        Transport::Multiplexed,
    ));

    let threads: Vec<_> = (0..4)
        .map(|i| {
            let c = client.clone();
            std::thread::spawn(move || c.get(&format!("k{i}")))
        })
        .collect();
    // Let all four requests reach the wire, then sever.
    std::thread::sleep(Duration::from_millis(60));
    server.drop_connections();

    let mut failures = 0;
    for t in threads {
        match t.join().unwrap() {
            Err(StoreError::Closed | StoreError::Io(_) | StoreError::Unavailable(_)) => {
                failures += 1;
            }
            other => panic!("in-flight request must fail transiently, got {other:?}"),
        }
    }
    assert_eq!(failures, 4, "every in-flight request fails, none hang");
    assert_eq!(
        server.connections_accepted.load(Ordering::Relaxed),
        1,
        "all four rode one shared connection, and no-retry means no reconnect yet"
    );

    // Recovery: past the breaker cooldown, the next request transparently
    // opens a fresh shared connection.
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(client.get("k0").unwrap(), None);
    assert_eq!(
        server.connections_accepted.load(Ordering::Relaxed),
        2,
        "recovery opens exactly one new shared connection"
    );
}

/// The same mid-flight sever, now with the retry budget enabled and a
/// trace active: the request must succeed transparently, and its trace
/// must carry exactly one retry event for the severed attempt.
#[test]
fn mid_multiplex_drop_is_retried_once_and_traced() {
    let server = CloudServer::start(CloudServerConfig {
        latency: netsim::LatencyModel {
            base_rtt_ms: 150.0,
            jitter_sigma: 0.0,
            bandwidth_bps: f64::INFINITY,
            contention_prob: 0.0,
            contention_mult: 1.0,
            service_ms: 0.0,
        },
        ..Default::default()
    })
    .unwrap();
    let client = Arc::new(CloudClient::connect_with(
        server.addr(),
        ResiliencePolicy::test_profile(),
        Transport::Multiplexed,
    ));

    // Sever from a helper thread once the request is in flight.
    let (got, data) = std::thread::scope(|scope| {
        let t = scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(60));
            server.drop_connections();
        });
        let root = obs::TraceContext::new_root();
        let trace_scope = obs::ctx::activate(root);
        let got = client.get("k");
        let data = trace_scope.finish();
        t.join().unwrap();
        (got, data)
    });
    assert_eq!(got.unwrap(), None, "the severed request recovers via retry");
    let retries: Vec<_> = data
        .events
        .iter()
        .filter(|(_, name, _)| name == "retry")
        .collect();
    assert_eq!(
        retries.len(),
        1,
        "one severed attempt, one retry event: {:?}",
        data.events
    );
    assert!(
        retries[0].2.contains("attempt=2"),
        "retry event names the second attempt: {:?}",
        retries[0]
    );
    assert_eq!(
        server.connections_accepted.load(Ordering::Relaxed),
        2,
        "the retry rode a fresh connection"
    );
}
