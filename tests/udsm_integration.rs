//! Full-system UDSM tests: many heterogeneous stores under one manager,
//! async everywhere, monitoring persisted through a store, the workload
//! generator against real servers, and any-store-as-cache (approach 3).

use cloudstore::{CloudClient, CloudServer};
use dscl::EnhancedClient;
use dscl_cache::{Cache, StoreCache};
use fskv::FsKv;
use kvapi::KeyValue;
use miniredis::{RedisKv, Server as RedisServer};
use minisql::{SqlKv, SqlServer};
use std::sync::Arc;
use udsm::workload::{ValueSource, WorkloadSpec};
use udsm::{MonitorReport, MonitoredStore, OpKind, UniversalDataStoreManager};

struct World {
    manager: UniversalDataStoreManager,
    _redis: RedisServer,
    _cloud: CloudServer,
    _sql: SqlServer,
    dir: std::path::PathBuf,
}

impl Drop for World {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

fn world(tag: &str) -> World {
    let dir = std::env::temp_dir().join(format!("udsm-int-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let redis = RedisServer::start().unwrap();
    let cloud = CloudServer::start_local().unwrap();
    let sql = SqlServer::start_in_memory().unwrap();
    let manager = UniversalDataStoreManager::new(4);
    manager.register("files", Arc::new(FsKv::open(dir.join("fs")).unwrap()));
    manager.register("sql", Arc::new(SqlKv::connect(sql.addr()).unwrap()));
    manager.register("redis", Arc::new(RedisKv::connect(redis.addr())));
    manager.register("cloud", Arc::new(CloudClient::connect(cloud.addr())));
    World {
        manager,
        _redis: redis,
        _cloud: cloud,
        _sql: sql,
        dir,
    }
}

#[test]
fn one_code_path_four_real_backends() {
    let w = world("swap");
    assert_eq!(w.manager.names(), vec!["cloud", "files", "redis", "sql"]);
    // The application function, written once:
    fn save_profile(store: &dyn KeyValue, user: &str, profile: &[u8]) -> kvapi::Result<()> {
        store.put(&format!("profiles/{user}"), profile)
    }
    for name in w.manager.names() {
        let store = w.manager.store(&name).unwrap();
        save_profile(
            store.as_ref(),
            "ada",
            format!("stored in {name}").as_bytes(),
        )
        .unwrap();
        assert_eq!(
            store.get("profiles/ada").unwrap().unwrap(),
            format!("stored in {name}").as_bytes()
        );
    }
}

#[test]
fn async_interface_on_every_registered_store() {
    let w = world("async");
    for name in w.manager.names() {
        let akv = w.manager.async_store(&name).unwrap();
        let puts: Vec<_> = (0..8)
            .map(|i| akv.put(&format!("async/{i}"), vec![i as u8; 1000]))
            .collect();
        for p in puts {
            p.get()
                .as_ref()
                .as_ref()
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        let keys = akv.keys().get();
        assert_eq!(
            keys.as_ref()
                .as_ref()
                .unwrap()
                .iter()
                .filter(|k| k.starts_with("async/"))
                .count(),
            8,
            "{name}"
        );
    }
}

#[test]
fn monitor_persists_into_another_store() {
    let w = world("monitor");
    // Monitor the cloud store; persist its report into minisql — "any of
    // the data stores supported by the UDSM" can archive performance data.
    let monitored = MonitoredStore::new(w.manager.store("cloud").unwrap(), 50);
    for i in 0..30 {
        monitored.put(&format!("m{i}"), &[0u8; 256]).unwrap();
        let _ = monitored.get(&format!("m{i}")).unwrap();
    }
    let report = monitored.report();
    assert_eq!(report.summary(OpKind::Get).count, 30);
    let archive = w.manager.store("sql").unwrap();
    report.persist(archive.as_ref(), "perf/cloud").unwrap();
    let loaded = MonitorReport::load(archive.as_ref(), "perf/cloud")
        .unwrap()
        .unwrap();
    assert_eq!(loaded.summary(OpKind::Get).count, 30);
    assert_eq!(loaded.recent.len(), 50);
}

#[test]
fn workload_generator_runs_against_real_servers() {
    let w = world("workload");
    let spec = WorkloadSpec {
        sizes: vec![500, 5_000],
        ops_per_point: 3,
        runs: 2,
        source: ValueSource::synthetic(),
        hit_rates: vec![0.0, 1.0],
    };
    for name in ["sql", "redis", "cloud"] {
        let store = w.manager.store(name).unwrap();
        let reads = spec.read_sweep(store.as_ref(), name).unwrap();
        let writes = spec.write_sweep(store.as_ref(), name).unwrap();
        assert_eq!(reads.points.len(), 2, "{name}");
        assert_eq!(writes.points.len(), 2, "{name}");
        assert!(reads.points.iter().all(|&(_, ms)| ms >= 0.0));
    }
}

#[test]
fn any_store_functions_as_cache_for_another() {
    // Approach 3 (§III): redis as the cache tier for the cloud store, both
    // reached through the plain key-value interface via StoreCache.
    let w = world("storecache");
    let cloud = w.manager.store("cloud").unwrap();
    let redis_as_cache = StoreCache::new(w.manager.store("redis").unwrap());
    let client = EnhancedClient::new(cloud).with_cache(Arc::new(redis_as_cache));
    client.put("via-store-cache", b"payload").unwrap();
    assert_eq!(
        client.get("via-store-cache").unwrap().unwrap(),
        &b"payload"[..]
    );
    assert_eq!(client.stats().cache_hits, 1);
    // The cache entries really live in redis (as DSCL envelopes).
    let redis = w.manager.store("redis").unwrap();
    assert!(redis.contains("via-store-cache").unwrap());
}

#[test]
fn copy_all_migrates_between_heterogeneous_stores() {
    let w = world("copy");
    let sql = w.manager.store("sql").unwrap();
    for i in 0..20 {
        sql.put(&format!("row/{i}"), format!("value {i}").as_bytes())
            .unwrap();
    }
    // SQL → cloud migration through the common interface.
    assert_eq!(w.manager.copy_all("sql", "cloud").unwrap(), 20);
    let cloud = w.manager.store("cloud").unwrap();
    assert_eq!(cloud.get("row/7").unwrap().unwrap(), &b"value 7"[..]);
    assert_eq!(cloud.stats().unwrap().keys, 20);
}

#[test]
fn coordinated_put_across_real_stores() {
    let w = world("coord");
    let stores: Vec<Arc<dyn KeyValue>> = vec![
        w.manager.store("files").unwrap(),
        w.manager.store("redis").unwrap(),
    ];
    udsm::coord::coordinated_put(&stores, "config", b"v2").unwrap();
    for s in &stores {
        assert_eq!(s.get("config").unwrap().unwrap(), &b"v2"[..]);
        assert_eq!(s.keys().unwrap(), vec!["config"], "no intent residue");
    }
}

#[test]
fn metrics_endpoint_scrapes_over_real_tcp() {
    let w = world("metrics");
    let cloud = CloudClient::connect(w._cloud.addr());
    cloud.put("obs/a", b"hello").unwrap();
    assert_eq!(cloud.get("obs/a").unwrap().unwrap(), &b"hello"[..]);
    let text = cloud.fetch_metrics().unwrap();
    // At least one counter with a positive value…
    let counter = text
        .lines()
        .find(|l| l.starts_with("cloudstore_requests_total{"))
        .unwrap_or_else(|| panic!("no request counter in scrape:\n{text}"));
    let hits: u64 = counter.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(hits >= 1, "{counter}");
    // …and a populated latency histogram with cumulative buckets.
    assert!(
        text.lines()
            .any(|l| l.starts_with("cloudstore_request_duration_ns_bucket{") && l.contains("le=")),
        "no histogram buckets in scrape:\n{text}"
    );
    let count_line = text
        .lines()
        .find(|l| {
            l.starts_with("cloudstore_request_duration_ns_count{")
                && l.contains("route=\"/v1/objects\"")
        })
        .unwrap_or_else(|| panic!("no histogram count in scrape:\n{text}"));
    let n: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert!(n >= 2, "{count_line}");
    // The scrape self-identifies with the stable node label the federation
    // keys on.
    assert!(
        text.contains(&format!("node=\"{}\"", w._cloud.addr())),
        "no node identity label in scrape:\n{text}"
    );
    // Process resource gauges ride along on every scrape.
    for gauge in ["process_resident_memory_bytes", "process_threads"] {
        let line = text
            .lines()
            .find(|l| l.starts_with(&format!("{gauge}{{")) || l.starts_with(&format!("{gauge} ")))
            .unwrap_or_else(|| panic!("no {gauge} gauge in scrape:\n{text}"));
        let v: f64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(v > 0.0, "{line}");
    }
}

#[test]
fn traced_get_through_full_pipeline_bounds_stage_sum_by_total() {
    // Acceptance: a DSCL get through cache + gzip + aes over the cloud store
    // yields a trace whose per-stage timings sum to no more than the total.
    let w = world("trace");
    let reg = Arc::new(obs::Registry::new());
    let codecs = || -> Vec<Box<dyn kvapi::codec::Codec>> {
        vec![
            Box::new(dscl_compress::GzipCodec::default()),
            Box::new(dscl_crypto::AesCodec::from_passphrase(
                "secret",
                dscl_crypto::KeySize::Aes128,
                dscl_crypto::codec::Mode::Cbc,
            )),
        ]
    };
    let writer = EnhancedClient::new(CloudClient::connect(w._cloud.addr()))
        .with_cache(Arc::new(dscl_cache::InProcessLru::new(1 << 20)))
        .with_registry(reg.clone());
    let writer = codecs()
        .into_iter()
        .fold(writer, |c, codec| c.with_codec(codec));
    writer.put("traced", &[7u8; 4096]).unwrap();

    // A second client with a cold cache forces the full decode path.
    let reader = EnhancedClient::new(CloudClient::connect(w._cloud.addr()))
        .with_cache(Arc::new(dscl_cache::InProcessLru::new(1 << 20)))
        .with_registry(reg.clone());
    let reader = codecs()
        .into_iter()
        .fold(reader, |c, codec| c.with_codec(codec));
    assert_eq!(reader.get("traced").unwrap().unwrap(), &[7u8; 4096][..]);

    let traces = reg.recent_traces();
    assert!(!traces.is_empty());
    for t in &traces {
        assert!(
            t.stage_sum() <= t.total,
            "stages exceed total in {}",
            t.render()
        );
    }
    let get = traces.iter().find(|t| t.op == "get").expect("a get trace");
    let stages: Vec<&str> = get.stages.iter().map(|(s, _)| *s).collect();
    for expected in ["cache_lookup", "store_io", "decrypt", "decompress"] {
        assert!(
            stages.contains(&expected),
            "missing {expected} in {stages:?}"
        );
    }
}

#[test]
fn cache_interface_over_every_store_behaves_like_a_cache() {
    let w = world("cacheiface");
    for name in w.manager.names() {
        let cache = StoreCache::new(w.manager.store(&name).unwrap());
        assert!(cache.get("nope").is_none());
        cache.put("k", kvapi::Bytes::from_static(b"v"));
        assert_eq!(cache.get("k").unwrap(), kvapi::Bytes::from_static(b"v"));
        assert!(cache.remove("k"));
        assert!(cache.get("k").is_none(), "{name}");
    }
}

/// The transport split composed with the UDSM: wrap a *multiplexed*
/// cloud client in [`udsm::AsyncKeyValue`] and every in-flight future
/// becomes one correlated request on a single shared connection — the
/// async interface keeps its `with_resilience` semantics while the socket
/// count drops from one-per-in-flight-request to one total.
#[test]
fn async_futures_multiplex_on_one_shared_connection() {
    use kvapi::{RpcClient, Transport};
    use resilience::ResiliencePolicy;
    use std::sync::atomic::Ordering;

    let server = CloudServer::start_local().unwrap();
    let client = CloudClient::connect_with(
        server.addr(),
        ResiliencePolicy::test_profile(),
        Transport::Multiplexed,
    );
    assert_eq!(RpcClient::transport(&client), Transport::Multiplexed);
    let akv = udsm::AsyncKeyValue::with_resilience(
        Arc::new(client),
        Arc::new(udsm::ThreadPool::new(8)),
        ResiliencePolicy::test_profile(),
    );

    // 32 writes submitted before any completion is awaited: up to 8 pool
    // workers are inside `send` at once, all riding the same socket.
    let puts: Vec<_> = (0..32)
        .map(|i| akv.put(&format!("mux/{i}"), vec![i as u8; 512]))
        .collect();
    for f in &puts {
        f.get().as_ref().as_ref().unwrap();
    }
    let gets: Vec<_> = (0..32).map(|i| akv.get(&format!("mux/{i}"))).collect();
    for (i, f) in gets.iter().enumerate() {
        assert_eq!(
            f.get().as_ref().as_ref().unwrap().as_deref(),
            Some(vec![i as u8; 512].as_slice())
        );
    }

    assert_eq!(
        server.connections_accepted.load(Ordering::Relaxed),
        1,
        "64 async ops over the multiplexed transport must share one connection"
    );

    // The wrapper-level breaker still sheds when the endpoint dies: stop
    // the server and the in-flight budget burns down to an error, not a
    // hang — identical semantics to the blocking transport.
    let wrapped = akv.resilience().unwrap();
    assert_eq!(wrapped.breaker().state(), resilience::BreakerState::Closed);
}
